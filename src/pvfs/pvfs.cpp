#include "pvfs/pvfs.hpp"

#include <memory>
#include <utility>

#include "common/faults.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace ada::pvfs {

namespace {
// Fault-injection sites (docs/robustness.md).  The generic site fires for
// any stripe of this direction; the cached per-server variants
// ("pvfs.stripe_read.s<node>") model one sick server.
constexpr const char* kSiteMetadata = "pvfs.metadata";
constexpr const char* kSiteStripeRead = "pvfs.stripe_read";
constexpr const char* kSiteStripeWrite = "pvfs.stripe_write";

/// Evaluate the generic then the per-server site; first fired outcome wins.
fault::Outcome stripe_outcome(const char* generic_site, const std::string& server_site) {
  if (!fault::enabled()) return fault::Outcome{};
  fault::Outcome outcome = fault::Injector::global().hit(generic_site);
  if (!outcome.fired()) outcome = fault::Injector::global().hit(server_site);
  return outcome;
}
}  // namespace

PvfsModel::PvfsModel(sim::Simulator& simulator, net::Fabric& fabric, std::string name,
                     std::vector<IoServer> servers, net::NodeId metadata_node,
                     StripeLayout layout, MetadataParams metadata)
    : simulator_(simulator),
      fabric_(fabric),
      name_(std::move(name)),
      servers_(std::move(servers)),
      metadata_(simulator, name_ + ".mds@node" + std::to_string(metadata_node)),
      metadata_params_(metadata),
      layout_(layout) {
  ADA_CHECK(!servers_.empty());
  layout_.server_count = static_cast<std::uint32_t>(servers_.size());
  sim::FlowNetwork& network = fabric_.network();
  links_.reserve(servers_.size());
  for (const IoServer& server : servers_) {
    ADA_CHECK(server.devices_per_node >= 1);
    const double read_bw = server.device.read_bandwidth * server.devices_per_node;
    const double write_bw = server.device.write_bandwidth * server.devices_per_node;
    const std::string base = name_ + ".s" + std::to_string(server.node);
    links_.push_back(ServerLinks{network.add_link(base + ".disk_rd", read_bw),
                                 network.add_link(base + ".disk_wr", write_bw)});
  }
  stripe_lanes_.assign(servers_.size(), 0);
  read_sites_.reserve(servers_.size());
  write_sites_.reserve(servers_.size());
  for (const IoServer& server : servers_) {
    const std::string suffix = ".s" + std::to_string(server.node);
    read_sites_.push_back(std::string(kSiteStripeRead) + suffix);
    write_sites_.push_back(std::string(kSiteStripeWrite) + suffix);
  }
}

void PvfsModel::set_retry_policy(const RetryPolicy& policy) {
  retry_policy_ = policy;
  retry_rng_ = Rng(policy.seed);
}

std::uint32_t PvfsModel::stripe_lane(std::uint32_t server) {
  std::uint32_t& lane = stripe_lanes_.at(server);
  if (lane == 0) {
    lane = obs::register_lane(name_ + ".s" + std::to_string(servers_[server].node) + ".stripe");
  }
  return lane;
}

double PvfsModel::aggregate_disk_read_bandwidth() const {
  double total = 0.0;
  for (const IoServer& server : servers_) {
    total += server.device.read_bandwidth * server.devices_per_node;
  }
  return total;
}

void PvfsModel::read_file(double bytes, net::NodeId client, Completion on_complete) {
  start_striped(bytes, client, /*write=*/false, std::move(on_complete));
}

void PvfsModel::write_file(double bytes, net::NodeId client, Completion on_complete) {
  start_striped(bytes, client, /*write=*/true, std::move(on_complete));
}

void PvfsModel::finish_stripe(const std::shared_ptr<OpState>& state, std::uint32_t server,
                              Status status) {
  if (!status.is_ok() && state->status.is_ok()) state->status = std::move(status);
  if (state->queue_depth != 0) {
    // Scatter-gather admission: this extent's slot frees, so the server's
    // next queued extent (FIFO -- file order, the locality the plan set up)
    // launches at the completion's sim time.
    ADA_CHECK(state->in_flight[server] > 0);
    --state->in_flight[server];
    if (!state->queued[server].empty() && state->in_flight[server] < state->queue_depth) {
      StripeTask next = std::move(state->queued[server].front());
      state->queued[server].pop_front();
      ++state->in_flight[server];
      start_stripe(state, std::move(next), state->ctx, /*attempt=*/1);
    }
  }
  if (--state->remaining == 0 && state->done) state->done(state->status);
}

void PvfsModel::fail_stripe(std::shared_ptr<OpState> state, StripeTask task,
                            obs::TraceContext ctx, int attempt, Error error) {
  const std::uint32_t s = task.server;
  if (is_transient(error.code()) && attempt < retry_policy_.max_attempts) {
    const double backoff = retry_policy_.backoff_for(attempt, retry_rng_);
    const double elapsed = simulator_.now() - state->start_time;
    if (retry_policy_.op_timeout_s <= 0.0 ||
        elapsed + backoff < retry_policy_.op_timeout_s) {
      ADA_OBS_COUNT("retry.pvfs.stripe", 1);
      // The backoff wait renders as a "stripe_retry" span on the server lane.
      const std::uint64_t span =
          obs::trace_enabled()
              ? obs::sim_begin(stripe_lane(s), "stripe_retry", simulator_.now(), ctx,
                               static_cast<std::uint64_t>(attempt))
              : 0;
      simulator_.schedule_after(
          backoff, [this, s, ctx, span, state = std::move(state), task = std::move(task),
                    attempt]() mutable {
            obs::sim_end(stripe_lanes_[s], "stripe_retry", simulator_.now(), span, ctx);
            start_stripe(std::move(state), std::move(task), ctx, attempt + 1);
          });
      return;
    }
    ADA_OBS_COUNT("retry.pvfs.stripe.exhausted", 1);
    finish_stripe(state, s,
                  deadline_exceeded(name_ + " stripe on s" + std::to_string(servers_[s].node) +
                                    " exceeded " + std::to_string(retry_policy_.op_timeout_s) +
                                    "s: " + error.to_string()));
    return;
  }
  if (is_transient(error.code())) {
    ADA_OBS_COUNT("retry.pvfs.stripe.exhausted", 1);
    finish_stripe(state, s,
                  unavailable(name_ + " stripe on s" + std::to_string(servers_[s].node) +
                              " failed after " + std::to_string(attempt) +
                              " attempt(s): " + error.to_string()));
    return;
  }
  finish_stripe(state, s, std::move(error));
}

void PvfsModel::start_stripe(std::shared_ptr<OpState> state, StripeTask task,
                             obs::TraceContext ctx, int attempt) {
  const std::uint32_t s = task.server;
  const char* generic_site = task.write ? kSiteStripeWrite : kSiteStripeRead;
  const std::string& server_site = task.write ? write_sites_[s] : read_sites_[s];
  const fault::Outcome outcome = stripe_outcome(generic_site, server_site);
  double extra_delay = 0.0;
  if (outcome.fired()) {
    if (outcome.kind == fault::Outcome::Kind::kDelay) {
      extra_delay = outcome.delay_seconds;
    } else {
      // A performance model moves no real bytes, so torn/corrupt collapse
      // to a failed stripe; the functional plane (plfs) models the silent
      // versions.
      fail_stripe(std::move(state), std::move(task), ctx, attempt,
                  outcome.to_error(server_site));
      return;
    }
  }
  // Per-stripe seek overhead: the device access latency delays the flow
  // start (charged per attempt -- a retry seeks again).
  const double start_delay = servers_[s].device.access_latency + extra_delay;
  const double server_bytes = task.bytes;
  const char* stripe_name = task.write ? "stripe_write" : "stripe_read";
  simulator_.schedule_after(start_delay, [this, s, ctx, stripe_name, server_bytes,
                                          state = std::move(state),
                                          task = std::move(task)]() mutable {
    // The stripe span opens when the flow actually starts (after the
    // device access latency) and closes when its last byte lands.
    const std::uint64_t span =
        obs::trace_enabled()
            ? obs::sim_begin(stripe_lane(s), stripe_name, simulator_.now(), ctx,
                             static_cast<std::uint64_t>(server_bytes))
            : 0;
    std::vector<sim::LinkId> path = task.path;  // keep the task for retries
    fabric_.network().start_flow(
        std::move(path), server_bytes, [this, s, ctx, stripe_name, span, state]() {
          obs::sim_end(stripe_lanes_[s], stripe_name, simulator_.now(), span, ctx);
          finish_stripe(state, s, Status::ok());
        });
  });
}

void PvfsModel::start_striped(double bytes, net::NodeId client, bool write,
                              Completion on_complete) {
  ADA_CHECK(bytes >= 0.0);
  double lookup = write ? metadata_params_.create_latency : metadata_params_.lookup_latency;
  if (write) {
    ADA_OBS_COUNT("pvfs.write.calls", 1);
    ADA_OBS_COUNT("pvfs.write.bytes", bytes);
  } else {
    ADA_OBS_COUNT("pvfs.read.calls", 1);
    ADA_OBS_COUNT("pvfs.read.bytes", bytes);
  }
  // Metadata-server fault site: a fired error fails the whole op before any
  // stripe starts (no retry -- the MDS round trip is one RPC here).
  const fault::Outcome meta = fault::hit(kSiteMetadata);
  if (meta.fired() && meta.kind != fault::Outcome::Kind::kDelay) {
    simulator_.schedule_after(0.0, [on_complete = std::move(on_complete),
                                    error = meta.to_error(kSiteMetadata)]() mutable {
      if (on_complete) on_complete(std::move(error));
    });
    return;
  }
  if (meta.kind == fault::Outcome::Kind::kDelay) lookup += meta.delay_seconds;
  const obs::TraceContext ctx = obs::trace_enabled() ? obs::current_context() : obs::TraceContext{};
  metadata_.submit(lookup, [this, bytes, client, write, ctx,
                            on_complete = std::move(on_complete)]() mutable {
    const auto distribution = layout_.distribution(static_cast<std::uint64_t>(bytes));
    auto state = std::make_shared<OpState>();
    state->done = std::move(on_complete);
    state->start_time = simulator_.now();
    for (std::uint32_t s = 0; s < servers_.size(); ++s) {
      if (distribution[s] == 0) continue;
      ++state->remaining;
      ADA_OBS_OBSERVE("pvfs.stripe.server_bytes", distribution[s]);
    }
    ADA_OBS_OBSERVE("pvfs.stripe.fanout", state->remaining);
    if (state->remaining == 0) {
      if (state->done) {
        simulator_.schedule_after(0.0, [state]() { state->done(Status::ok()); });
      }
      return;
    }
    for (std::uint32_t s = 0; s < servers_.size(); ++s) {
      if (distribution[s] == 0) continue;
      // Path: disk stage + network stage.  For reads the data moves
      // server->client; for writes client->server with the disk stage last.
      StripeTask task;
      task.server = s;
      task.bytes = static_cast<double>(distribution[s]);
      task.write = write;
      if (write) {
        task.path = fabric_.path(client, servers_[s].node);
        task.path.push_back(links_[s].disk_write);
      } else {
        task.path.push_back(links_[s].disk_read);
        const auto net_path = fabric_.path(servers_[s].node, client);
        task.path.insert(task.path.end(), net_path.begin(), net_path.end());
      }
      start_stripe(state, std::move(task), ctx, /*attempt=*/1);
    }
  });
}

void PvfsModel::read_extents(const std::vector<ExtentRead>& extents, net::NodeId client,
                             SgParams params, Completion on_complete) {
  double total = 0.0;
  for (const ExtentRead& extent : extents) {
    ADA_CHECK(extent.server < servers_.size() && extent.bytes >= 0.0);
    total += extent.bytes;
  }
  ADA_OBS_COUNT("pvfs.read.calls", 1);
  ADA_OBS_COUNT("pvfs.read.bytes", total);
  ADA_OBS_COUNT("pvfs.sg.reads", 1);
  ADA_OBS_COUNT("pvfs.sg.extents", extents.size());
  // Same metadata discipline as read_file: one MDS round trip resolves the
  // whole plan, and an MDS fault fails the op before any extent starts.
  double lookup = metadata_params_.lookup_latency;
  const fault::Outcome meta = fault::hit(kSiteMetadata);
  if (meta.fired() && meta.kind != fault::Outcome::Kind::kDelay) {
    simulator_.schedule_after(0.0, [on_complete = std::move(on_complete),
                                    error = meta.to_error(kSiteMetadata)]() mutable {
      if (on_complete) on_complete(std::move(error));
    });
    return;
  }
  if (meta.kind == fault::Outcome::Kind::kDelay) lookup += meta.delay_seconds;
  const obs::TraceContext ctx = obs::trace_enabled() ? obs::current_context() : obs::TraceContext{};
  metadata_.submit(lookup, [this, extents, client, params, ctx,
                            on_complete = std::move(on_complete)]() mutable {
    auto state = std::make_shared<OpState>();
    state->done = std::move(on_complete);
    state->start_time = simulator_.now();
    state->ctx = ctx;
    state->queue_depth = params.queue_depth;
    // Group extents by owning server, preserving file order within each
    // server (the plan's locality), and build each flow's path once.
    std::vector<std::deque<StripeTask>> per_server(servers_.size());
    for (const ExtentRead& extent : extents) {
      if (extent.bytes <= 0.0) continue;
      StripeTask task;
      task.server = extent.server;
      task.bytes = extent.bytes;
      task.path.push_back(links_[extent.server].disk_read);
      const auto net_path = fabric_.path(servers_[extent.server].node, client);
      task.path.insert(task.path.end(), net_path.begin(), net_path.end());
      ++state->remaining;
      ADA_OBS_OBSERVE("pvfs.stripe.server_bytes", extent.bytes);
      per_server[extent.server].push_back(std::move(task));
    }
    ADA_OBS_OBSERVE("pvfs.stripe.fanout", state->remaining);
    if (state->remaining == 0) {
      if (state->done) {
        simulator_.schedule_after(0.0, [state]() { state->done(Status::ok()); });
      }
      return;
    }
    if (state->queue_depth == 0) {
      // Unbounded: every flow starts now, like read_file's stripes.
      for (auto& queue : per_server) {
        while (!queue.empty()) {
          StripeTask task = std::move(queue.front());
          queue.pop_front();
          start_stripe(state, std::move(task), ctx, /*attempt=*/1);
        }
      }
      return;
    }
    state->in_flight.assign(servers_.size(), 0);
    state->queued = std::move(per_server);
    for (std::uint32_t s = 0; s < state->queued.size(); ++s) {
      while (!state->queued[s].empty() && state->in_flight[s] < state->queue_depth) {
        StripeTask task = std::move(state->queued[s].front());
        state->queued[s].pop_front();
        ++state->in_flight[s];
        start_stripe(state, std::move(task), ctx, /*attempt=*/1);
      }
    }
  });
}

}  // namespace ada::pvfs
