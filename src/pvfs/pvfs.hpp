// PVFS (OrangeFS) performance model: striped I/O over storage nodes.
//
// Reproduces the paper's cluster substrate (Table 4): a PVFS file system
// whose I/O servers are cluster nodes with local disks, accessed by compute
// nodes over the fabric.  A file read fans out into one flow per I/O server,
// each crossing [server disk -> server NIC -> switch -> client NIC]; the
// flow model's max-min sharing then yields the aggregate-vs-bottleneck
// behaviour (HDD servers limit hybrid reads; the client NIC caps SSD reads).
//
// The paper runs *two* PVFS instances -- one over the HDD nodes and one over
// the SSD nodes -- with ADA dispatching between them; each instance is one
// PvfsModel here.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/retry.hpp"
#include "net/fabric.hpp"
#include "obs/events.hpp"
#include "pvfs/striping.hpp"
#include "sim/resource.hpp"
#include "storage/device.hpp"

namespace ada::pvfs {

/// One I/O server: a fabric node with a local disk subsystem.
struct IoServer {
  net::NodeId node = 0;
  storage::DeviceSpec device;       // per-disk spec
  std::uint32_t devices_per_node = 1;  // disks aggregated on this server
};

/// Metadata operation cost (PVFS metadata server round trip).
struct MetadataParams {
  double lookup_latency = 250e-6;  // getattr + layout fetch
  double create_latency = 400e-6;
};

/// One extent of a scatter-gather read: `bytes` served by server index
/// `server` (StripeLayout::extents builds a plan from a file size).
struct ExtentRead {
  double bytes = 0.0;
  std::uint32_t server = 0;
};

/// Scatter-gather knobs for read_extents.
struct SgParams {
  /// Extents in flight per server: extents beyond the window queue FIFO on
  /// their owning server and launch as earlier ones finish.  0 = unbounded
  /// (every extent's flow starts immediately, like read_file's stripes).
  unsigned queue_depth = 0;
};

class PvfsModel {
 public:
  PvfsModel(sim::Simulator& simulator, net::Fabric& fabric, std::string name,
            std::vector<IoServer> servers, net::NodeId metadata_node,
            StripeLayout layout = {}, MetadataParams metadata = {});

  const std::string& name() const noexcept { return name_; }
  const StripeLayout& layout() const noexcept { return layout_; }
  std::uint32_t server_count() const noexcept { return static_cast<std::uint32_t>(servers_.size()); }

  /// Aggregate streaming read bandwidth of all servers (bytes/s), before
  /// network limits -- a sanity metric for tests and reports.
  double aggregate_disk_read_bandwidth() const;

  /// Completion of a file operation.  Without armed faults the status is
  /// always OK; with faults, stripe errors that survive the retry policy
  /// surface here as a typed error (first failure wins).
  using Completion = std::function<void(Status)>;

  /// Retry policy for stripe flows: failed stripes are retried on the
  /// *simulated* clock with exponential backoff + jitter, so retries cost
  /// sim time and appear as "stripe_retry" spans on the server lanes.
  /// `op_timeout_s` bounds the whole file op in sim seconds.
  void set_retry_policy(const RetryPolicy& policy);
  const RetryPolicy& retry_policy() const noexcept { return retry_policy_; }

  /// Read a striped file of `bytes` into `client`; `on_complete` fires after
  /// the metadata lookup and every stripe flow finish (or fails for good).
  void read_file(double bytes, net::NodeId client, Completion on_complete);

  /// Write a striped file of `bytes` from `client`.
  void write_file(double bytes, net::NodeId client, Completion on_complete);

  /// Scatter-gather read: one concurrent stripe flow per extent, grouped by
  /// owning server (extents keep file order within a server -- the locality
  /// the retriever's plan provides) and admitted under the per-server queue
  /// depth.  Completion semantics match read_file: `on_complete` fires after
  /// the metadata lookup and every extent finishes (or fails for good); the
  /// first failure in launch order is sticky.  A plan of one extent per
  /// server at unbounded depth reproduces read_file's event schedule.
  void read_extents(const std::vector<ExtentRead>& extents, net::NodeId client,
                    SgParams params, Completion on_complete);

  // Status-less completions (callers that predate the fault plane; a no-arg
  // lambda binds here and unresolvable failures are dropped).
  void read_file(double bytes, net::NodeId client, std::function<void()> on_complete) {
    read_file(bytes, client, discard_status(std::move(on_complete)));
  }
  void write_file(double bytes, net::NodeId client, std::function<void()> on_complete) {
    write_file(bytes, client, discard_status(std::move(on_complete)));
  }

 private:
  struct ServerLinks {
    sim::LinkId disk_read;
    sim::LinkId disk_write;
  };

  /// One stripe's work, kept so a retry can re-launch the same flow.
  struct StripeTask {
    std::uint32_t server = 0;
    double bytes = 0.0;
    bool write = false;
    std::vector<sim::LinkId> path;
  };

  /// One in-flight file operation (shared by its stripe flows).
  struct OpState {
    std::uint32_t remaining = 0;
    Status status;        // first stripe failure, sticky
    Completion done;
    double start_time = 0.0;  // sim time at dispatch (op timeout basis)
    // Scatter-gather admission (read_extents with queue_depth != 0): per-
    // server FIFO of extents beyond the window, launched as slots free up.
    // read_file/write_file ops leave these empty.
    unsigned queue_depth = 0;  // 0 = unbounded, no admission bookkeeping
    std::vector<std::deque<StripeTask>> queued;
    std::vector<std::uint32_t> in_flight;
    obs::TraceContext ctx;  // requester context for deferred launches
  };

  static Completion discard_status(std::function<void()> f) {
    return [f = std::move(f)](const Status&) {
      if (f) f();
    };
  }

  void start_striped(double bytes, net::NodeId client, bool write, Completion on_complete);
  void start_stripe(std::shared_ptr<OpState> state, StripeTask task,
                    obs::TraceContext ctx, int attempt);
  void fail_stripe(std::shared_ptr<OpState> state, StripeTask task,
                   obs::TraceContext ctx, int attempt, Error error);
  void finish_stripe(const std::shared_ptr<OpState>& state, std::uint32_t server, Status status);
  std::uint32_t stripe_lane(std::uint32_t server);

  sim::Simulator& simulator_;
  net::Fabric& fabric_;
  std::string name_;
  std::vector<IoServer> servers_;
  std::vector<ServerLinks> links_;
  sim::FcfsResource metadata_;
  MetadataParams metadata_params_;
  StripeLayout layout_;
  std::vector<std::uint32_t> stripe_lanes_;  // per-server, lazily registered
  std::vector<std::string> read_sites_;      // per-server fault sites, cached
  std::vector<std::string> write_sites_;
  RetryPolicy retry_policy_;
  Rng retry_rng_{0x7e7};
};

}  // namespace ada::pvfs
