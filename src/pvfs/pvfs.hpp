// PVFS (OrangeFS) performance model: striped I/O over storage nodes.
//
// Reproduces the paper's cluster substrate (Table 4): a PVFS file system
// whose I/O servers are cluster nodes with local disks, accessed by compute
// nodes over the fabric.  A file read fans out into one flow per I/O server,
// each crossing [server disk -> server NIC -> switch -> client NIC]; the
// flow model's max-min sharing then yields the aggregate-vs-bottleneck
// behaviour (HDD servers limit hybrid reads; the client NIC caps SSD reads).
//
// The paper runs *two* PVFS instances -- one over the HDD nodes and one over
// the SSD nodes -- with ADA dispatching between them; each instance is one
// PvfsModel here.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "pvfs/striping.hpp"
#include "sim/resource.hpp"
#include "storage/device.hpp"

namespace ada::pvfs {

/// One I/O server: a fabric node with a local disk subsystem.
struct IoServer {
  net::NodeId node = 0;
  storage::DeviceSpec device;       // per-disk spec
  std::uint32_t devices_per_node = 1;  // disks aggregated on this server
};

/// Metadata operation cost (PVFS metadata server round trip).
struct MetadataParams {
  double lookup_latency = 250e-6;  // getattr + layout fetch
  double create_latency = 400e-6;
};

class PvfsModel {
 public:
  PvfsModel(sim::Simulator& simulator, net::Fabric& fabric, std::string name,
            std::vector<IoServer> servers, net::NodeId metadata_node,
            StripeLayout layout = {}, MetadataParams metadata = {});

  const std::string& name() const noexcept { return name_; }
  const StripeLayout& layout() const noexcept { return layout_; }
  std::uint32_t server_count() const noexcept { return static_cast<std::uint32_t>(servers_.size()); }

  /// Aggregate streaming read bandwidth of all servers (bytes/s), before
  /// network limits -- a sanity metric for tests and reports.
  double aggregate_disk_read_bandwidth() const;

  /// Read a striped file of `bytes` into `client`; `on_complete` fires after
  /// the metadata lookup and every stripe flow finish.
  void read_file(double bytes, net::NodeId client, std::function<void()> on_complete);

  /// Write a striped file of `bytes` from `client`.
  void write_file(double bytes, net::NodeId client, std::function<void()> on_complete);

 private:
  struct ServerLinks {
    sim::LinkId disk_read;
    sim::LinkId disk_write;
  };

  void start_striped(double bytes, net::NodeId client, bool write,
                     std::function<void()> on_complete);
  std::uint32_t stripe_lane(std::uint32_t server);

  sim::Simulator& simulator_;
  net::Fabric& fabric_;
  std::string name_;
  std::vector<IoServer> servers_;
  std::vector<ServerLinks> links_;
  sim::FcfsResource metadata_;
  MetadataParams metadata_params_;
  StripeLayout layout_;
  std::vector<std::uint32_t> stripe_lanes_;  // per-server, lazily registered
};

}  // namespace ada::pvfs
