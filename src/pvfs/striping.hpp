// PVFS stripe layout arithmetic.
//
// PVFS/OrangeFS distributes a file round-robin across I/O servers in fixed
// stripe units (simple_stripe distribution, 64 KiB default).  These helpers
// answer the layout questions the simulator needs: how many bytes of a file
// land on each server, and which server holds a given logical offset.
#pragma once

#include <cstdint>
#include <vector>

namespace ada::pvfs {

struct StripeLayout {
  std::uint64_t stripe_size = 64 * 1024;  // PVFS simple_stripe default
  std::uint32_t server_count = 1;

  /// Bytes of a `file_size`-byte file stored on server `server`
  /// (round-robin starting at server 0).
  std::uint64_t bytes_on_server(std::uint64_t file_size, std::uint32_t server) const;

  /// Server holding logical offset `offset`.
  std::uint32_t server_of(std::uint64_t offset) const;

  /// Per-server byte totals for a file (sums to file_size).
  std::vector<std::uint64_t> distribution(std::uint64_t file_size) const;

  /// Number of stripe units the file occupies on `server` (request count for
  /// the device model).
  std::uint64_t stripes_on_server(std::uint64_t file_size, std::uint32_t server) const;

  /// One logical extent of a scatter-gather read plan.
  struct Extent {
    std::uint64_t bytes = 0;
    std::uint32_t server = 0;  // server holding the extent's first byte
  };

  /// Split a `file_size`-byte file into `extent_bytes`-sized extents, in
  /// file order, attributed round-robin across servers (extent i -> server
  /// i % N, the balanced ownership a stripe-aligned layout yields).  This
  /// is the unit of fan-out PvfsModel::read_extents consumes.
  std::vector<Extent> extents(std::uint64_t file_size, std::uint64_t extent_bytes) const;
};

}  // namespace ada::pvfs
