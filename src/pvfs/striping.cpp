#include "pvfs/striping.hpp"

#include "common/check.hpp"

namespace ada::pvfs {

std::uint64_t StripeLayout::bytes_on_server(std::uint64_t file_size, std::uint32_t server) const {
  ADA_CHECK(server < server_count);
  ADA_CHECK(stripe_size > 0);
  const std::uint64_t full_rounds = file_size / (stripe_size * server_count);
  const std::uint64_t tail = file_size % (stripe_size * server_count);
  std::uint64_t bytes = full_rounds * stripe_size;
  const std::uint64_t tail_start = static_cast<std::uint64_t>(server) * stripe_size;
  if (tail > tail_start) bytes += std::min(stripe_size, tail - tail_start);
  return bytes;
}

std::uint32_t StripeLayout::server_of(std::uint64_t offset) const {
  return static_cast<std::uint32_t>((offset / stripe_size) % server_count);
}

std::vector<std::uint64_t> StripeLayout::distribution(std::uint64_t file_size) const {
  std::vector<std::uint64_t> out(server_count);
  for (std::uint32_t s = 0; s < server_count; ++s) out[s] = bytes_on_server(file_size, s);
  return out;
}

std::uint64_t StripeLayout::stripes_on_server(std::uint64_t file_size, std::uint32_t server) const {
  const std::uint64_t bytes = bytes_on_server(file_size, server);
  return (bytes + stripe_size - 1) / stripe_size;
}

std::vector<StripeLayout::Extent> StripeLayout::extents(std::uint64_t file_size,
                                                        std::uint64_t extent_bytes) const {
  ADA_CHECK(extent_bytes > 0);
  std::vector<Extent> out;
  out.reserve(static_cast<std::size_t>((file_size + extent_bytes - 1) / extent_bytes));
  for (std::uint64_t offset = 0; offset < file_size; offset += extent_bytes) {
    // Attribute extent i to server i % N (round-robin in file order) rather
    // than to the server of its first byte: when extent_bytes is a stripe
    // multiple, "first byte's server" aliases (extent k starts on stripe
    // k*(extent/stripe), and k*8 % 2 == 0 for every k) and would starve all
    // but a few servers, which no real PVFS layout does.
    out.push_back(Extent{std::min(extent_bytes, file_size - offset),
                         static_cast<std::uint32_t>((offset / extent_bytes) % server_count)});
  }
  return out;
}

}  // namespace ada::pvfs
