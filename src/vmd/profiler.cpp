#include "vmd/profiler.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace ada::vmd {

void PhaseProfiler::add(const std::string& stack, double seconds) {
  ADA_CHECK(seconds >= 0.0);
  ADA_CHECK(!stack.empty());
  stacks_[stack] += seconds;
  total_ += seconds;
}

double PhaseProfiler::seconds_under(const std::string& prefix) const {
  double sum = 0.0;
  for (const auto& [stack, seconds] : stacks_) {
    if (stack == prefix || starts_with(stack, prefix + ";")) sum += seconds;
  }
  return sum;
}

double PhaseProfiler::fraction_under(const std::string& prefix) const {
  if (total_ <= 0.0) return 0.0;
  return seconds_under(prefix) / total_;
}

std::vector<std::string> PhaseProfiler::folded() const {
  std::vector<std::string> out;
  out.reserve(stacks_.size());
  for (const auto& [stack, seconds] : stacks_) {
    out.push_back(stack + " " + std::to_string(static_cast<long long>(std::llround(seconds * 1e3))));
  }
  return out;  // std::map iteration is already lexicographic
}

void PhaseProfiler::clear() {
  stacks_.clear();
  total_ = 0.0;
}

}  // namespace ada::vmd
