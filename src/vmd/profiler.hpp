// Phase profiler with flame-graph (folded stack) output.
//
// The paper's Fig. 8 visualizes VMD's CPU bursts as a flame graph and finds
// decompression weighs more than 50% of CPU time under ext4.  This profiler
// accumulates CPU seconds under semicolon-separated stack paths and emits
// Brendan Gregg's folded-stack format, the direct input of flamegraph.pl.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ada::vmd {

class PhaseProfiler {
 public:
  /// Accumulate `seconds` of CPU under `stack` ("vmd;load;decompress").
  void add(const std::string& stack, double seconds);

  /// Total seconds across all stacks.
  double total_seconds() const noexcept { return total_; }

  /// Seconds under stacks equal to or nested below `prefix`.
  double seconds_under(const std::string& prefix) const;

  /// Fraction of total under `prefix` (0 when no samples at all).
  double fraction_under(const std::string& prefix) const;

  /// Folded-stack lines: "vmd;load;decompress 1234" (sample unit =
  /// milliseconds, rounded), sorted lexicographically -- feed to
  /// flamegraph.pl to reproduce Fig. 8.
  std::vector<std::string> folded() const;

  /// All recorded stacks with their seconds.
  const std::map<std::string, double>& stacks() const noexcept { return stacks_; }

  void clear();

 private:
  std::map<std::string, double> stacks_;
  double total_ = 0.0;
};

}  // namespace ada::vmd
