#include "vmd/command.hpp"

#include "common/strings.hpp"
#include "common/units.hpp"
#include "vmd/analysis.hpp"
#include "vmd/select.hpp"

namespace ada::vmd {

Result<std::string> CommandInterpreter::execute(const std::string& line) {
  const auto args = split_whitespace(line);
  if (args.empty()) return std::string();
  if (args[0] == "mol") return cmd_mol(args);
  if (args[0] == "animate") return cmd_animate(args);
  if (args[0] == "render") return cmd_render(args);
  if (args[0] == "atomselect") return cmd_atomselect(line);
  if (args[0] == "measure") return cmd_measure(args);
  return invalid_argument("unknown command: " + args[0]);
}

Result<std::string> CommandInterpreter::cmd_atomselect(const std::string& line) {
  if (!session_.has_molecule()) return failed_precondition("no molecule loaded");
  const std::string expression = std::string(trim(line.substr(std::string("atomselect").size())));
  if (expression.empty()) return invalid_argument("usage: atomselect <expression>");
  ADA_ASSIGN_OR_RETURN(const chem::Selection selection,
                       atom_select(session_.system(), expression));
  const auto loaded = selection.intersect(session_.loaded_selection());
  return std::to_string(selection.count()) + " atoms selected (" +
         std::to_string(loaded.count()) + " in the loaded subset)";
}

Result<std::string> CommandInterpreter::cmd_measure(const std::vector<std::string>& args) {
  if (session_.frames().frame_count() == 0) return failed_precondition("no frames loaded");
  if (args.size() == 2 && args[1] == "rgyr") {
    const auto& frame = session_.frames().frame(current_frame_);
    return "Rgyr = " + format_fixed(radius_of_gyration(frame.coords), 4) + " nm (frame " +
           std::to_string(current_frame_) + ")";
  }
  if (args.size() == 4 && args[1] == "rmsd") {
    const long long a = parse_int(args[2]);
    const long long b = parse_int(args[3]);
    const auto n = static_cast<long long>(session_.frames().frame_count());
    if (a < 0 || b < 0 || a >= n || b >= n) return out_of_range("frame index out of range");
    ADA_ASSIGN_OR_RETURN(
        const double rmsd,
        rmsd_aligned(session_.frames().frame(static_cast<std::size_t>(a)).coords,
                     session_.frames().frame(static_cast<std::size_t>(b)).coords));
    return "aligned RMSD(" + args[2] + ", " + args[3] + ") = " + format_fixed(rmsd, 5) + " nm";
  }
  return invalid_argument("usage: measure rgyr | measure rmsd <frameA> <frameB>");
}

Result<std::string> CommandInterpreter::cmd_mol(const std::vector<std::string>& args) {
  if (args.size() >= 3 && args[1] == "new") {
    ADA_RETURN_IF_ERROR(session_.mol_new_file(args[2]));
    return "loaded structure " + args[2] + " (" + std::to_string(session_.system().atom_count()) +
           " atoms)";
  }
  if (args.size() >= 3 && args[1] == "addfile") {
    std::optional<core::Tag> tag;
    if (args.size() == 5 && args[3] == "tag") {
      tag = args[4];
    } else if (args.size() != 3) {
      return invalid_argument("usage: mol addfile <path> [tag <t>]");
    }
    ADA_RETURN_IF_ERROR(session_.mol_addfile(args[2], tag));
    return "loaded " + std::to_string(session_.frames().frame_count()) + " frames (" +
           std::to_string(session_.loaded_selection().count()) + " atoms" +
           (tag.has_value() ? ", tag " + *tag : std::string()) + ", " +
           format_bytes(session_.frames().bytes()) + " in memory)";
  }
  if (args.size() == 2 && args[1] == "info") {
    if (!session_.has_molecule()) return std::string("no molecule loaded");
    return std::to_string(session_.system().atom_count()) + " atoms, " +
           std::to_string(session_.frames().frame_count()) + " frames, selection " +
           std::to_string(session_.loaded_selection().count()) + " atoms";
  }
  return invalid_argument("usage: mol new <pdb> | mol addfile <path> [tag <t>] | mol info");
}

Result<std::string> CommandInterpreter::cmd_animate(const std::vector<std::string>& args) {
  if (args.size() != 3 || args[1] != "goto") {
    return invalid_argument("usage: animate goto <frame>");
  }
  const long long frame = parse_int(args[2]);
  if (frame < 0 || static_cast<std::size_t>(frame) >= session_.frames().frame_count()) {
    return out_of_range("frame " + args[2] + " of " +
                        std::to_string(session_.frames().frame_count()));
  }
  current_frame_ = static_cast<std::size_t>(frame);
  return "frame " + args[2];
}

Result<std::string> CommandInterpreter::cmd_render(const std::vector<std::string>& args) {
  if (args.size() != 3 || args[1] != "snapshot") {
    return invalid_argument("usage: render snapshot <out.ppm>");
  }
  ADA_ASSIGN_OR_RETURN(const RenderResult result, session_.render(current_frame_));
  ADA_RETURN_IF_ERROR(write_ppm(args[2], result.image));
  return "rendered frame " + std::to_string(current_frame_) + " to " + args[2] + " (" +
         std::to_string(result.stats.atoms) + " atoms, " + std::to_string(result.stats.bonds) +
         " bonds)";
}

}  // namespace ada::vmd
