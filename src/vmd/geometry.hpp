// Geometry builder: bond search and representation statistics.
//
// The "data rendering" phase the paper measures is VMD rebuilding 3D scene
// geometry from frames.  Its dominant computation is the distance-based bond
// search; this module implements it with a uniform cell grid (linked-cell
// method, the standard O(N) neighbor search of MD codes) over real
// coordinates, so render-phase CPU costs in the calibration are grounded in
// real work.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "chem/selection.hpp"
#include "chem/system.hpp"
#include "common/result.hpp"

namespace ada::vmd {

/// A chemical bond between two atom indices (subset-local).
struct Bond {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  friend bool operator==(const Bond&, const Bond&) = default;
};

/// Scene statistics for one built frame.
struct GeometryStats {
  std::uint64_t atoms = 0;
  std::uint64_t bonds = 0;
  std::uint64_t line_vertices = 0;   // 2 per bond (Lines representation)
  std::uint64_t sphere_count = 0;    // 1 per atom (VDW representation)
};

/// Distance-based bond search: a bond exists when the pair distance is below
/// `tolerance` x (r_vdw(a) + r_vdw(b)).  `radii` holds per-atom VDW radii in
/// nm, parallel to `coords` (xyz triplets).  VMD uses tolerance 0.6.
std::vector<Bond> find_bonds(std::span<const float> coords, std::span<const float> radii,
                             float tolerance = 0.6f);

/// Per-atom VDW radii for the atoms of `selection` within `system`.
std::vector<float> subset_radii(const chem::System& system, const chem::Selection& selection);

/// Build scene statistics for one frame of a subset.
GeometryStats build_geometry(std::span<const float> coords, std::span<const float> radii);

}  // namespace ada::vmd
