#include "vmd/renderer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/binary_io.hpp"

namespace ada::vmd {

std::vector<std::uint8_t> Image::to_ppm() const {
  const std::string header =
      "P6\n" + std::to_string(width) + " " + std::to_string(height) + "\n255\n";
  std::vector<std::uint8_t> out(header.begin(), header.end());
  out.insert(out.end(), rgb.begin(), rgb.end());
  return out;
}

void category_color(chem::Category category, std::uint8_t* rgb_out) {
  switch (category) {
    case chem::Category::kProtein: rgb_out[0] = 70;  rgb_out[1] = 130; rgb_out[2] = 235; break;
    case chem::Category::kNucleic: rgb_out[0] = 210; rgb_out[1] = 110; rgb_out[2] = 40;  break;
    case chem::Category::kWater:   rgb_out[0] = 190; rgb_out[1] = 30;  rgb_out[2] = 45;  break;
    case chem::Category::kLipid:   rgb_out[0] = 235; rgb_out[1] = 200; rgb_out[2] = 60;  break;
    case chem::Category::kIon:     rgb_out[0] = 90;  rgb_out[1] = 200; rgb_out[2] = 120; break;
    case chem::Category::kLigand:  rgb_out[0] = 200; rgb_out[1] = 90;  rgb_out[2] = 220; break;
    case chem::Category::kOther:   rgb_out[0] = 150; rgb_out[1] = 150; rgb_out[2] = 150; break;
  }
}

Result<RenderResult> render_frame(std::span<const float> coords, std::span<const float> radii,
                                  std::span<const chem::Category> categories,
                                  const RenderOptions& options) {
  if (coords.size() != radii.size() * 3 || radii.size() != categories.size()) {
    return invalid_argument("render inputs disagree on atom count");
  }
  if (options.width == 0 || options.height == 0) {
    return invalid_argument("zero-sized render target");
  }
  if (options.view_axis < 0 || options.view_axis > 2) {
    return invalid_argument("view_axis must be 0, 1 or 2");
  }

  RenderResult result;
  result.image.width = options.width;
  result.image.height = options.height;
  result.image.rgb.assign(std::size_t{3} * options.width * options.height, 16);  // dark bg
  result.stats = build_geometry(coords, radii);
  const std::size_t n = radii.size();
  if (n == 0) return result;

  const int u_axis = (options.view_axis + 1) % 3;
  const int v_axis = (options.view_axis + 2) % 3;
  const int d_axis = options.view_axis;

  // Frame bounds -> screen transform.
  float lo_u = std::numeric_limits<float>::max();
  float hi_u = std::numeric_limits<float>::lowest();
  float lo_v = lo_u;
  float hi_v = hi_u;
  for (std::size_t i = 0; i < n; ++i) {
    lo_u = std::min(lo_u, coords[3 * i + static_cast<std::size_t>(u_axis)]);
    hi_u = std::max(hi_u, coords[3 * i + static_cast<std::size_t>(u_axis)]);
    lo_v = std::min(lo_v, coords[3 * i + static_cast<std::size_t>(v_axis)]);
    hi_v = std::max(hi_v, coords[3 * i + static_cast<std::size_t>(v_axis)]);
  }
  const float span_u = std::max(hi_u - lo_u, 1e-3f);
  const float span_v = std::max(hi_v - lo_v, 1e-3f);
  const float scale = 0.92f * std::min(static_cast<float>(options.width) / span_u,
                                       static_cast<float>(options.height) / span_v);
  const float off_x = (static_cast<float>(options.width) - scale * span_u) / 2;
  const float off_y = (static_cast<float>(options.height) - scale * span_v) / 2;

  // Painter's algorithm: back-to-front along the view axis.
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return coords[3 * a + static_cast<std::size_t>(d_axis)] <
           coords[3 * b + static_cast<std::size_t>(d_axis)];
  });

  for (const std::uint32_t i : order) {
    const float u = coords[3 * i + static_cast<std::size_t>(u_axis)];
    const float v = coords[3 * i + static_cast<std::size_t>(v_axis)];
    const float cx = off_x + scale * (u - lo_u);
    const float cy = off_y + scale * (v - lo_v);
    const float r = std::max(1.0f, scale * radii[i] * options.splat_scale);
    std::uint8_t color[3] = {0, 0, 0};
    category_color(categories[i], color);

    const int x0 = std::max(0, static_cast<int>(cx - r));
    const int x1 = std::min(static_cast<int>(options.width) - 1, static_cast<int>(cx + r));
    const int y0 = std::max(0, static_cast<int>(cy - r));
    const int y1 = std::min(static_cast<int>(options.height) - 1, static_cast<int>(cy + r));
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        const float dx = (static_cast<float>(x) - cx) / r;
        const float dy = (static_cast<float>(y) - cy) / r;
        const float rr = dx * dx + dy * dy;
        if (rr > 1.0f) continue;
        // Lambert-ish sphere shading.
        const float shade = 0.55f + 0.45f * std::sqrt(1.0f - rr);
        const std::size_t p =
            3 * (static_cast<std::size_t>(y) * options.width + static_cast<std::size_t>(x));
        for (int c = 0; c < 3; ++c) {
          result.image.rgb[p + static_cast<std::size_t>(c)] =
              static_cast<std::uint8_t>(static_cast<float>(color[c]) * shade);
        }
      }
    }
  }
  return result;
}

Status write_ppm(const std::string& path, const Image& image) {
  return write_file(path, image.to_ppm());
}

}  // namespace ada::vmd
