#include "vmd/replay.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ada::vmd {

AnimationReplayer::AnimationReplayer(std::uint32_t frame_count, double frame_bytes,
                                     double cache_capacity_bytes)
    : frame_count_(frame_count), frame_bytes_(frame_bytes) {
  ADA_CHECK(frame_count > 0);
  ADA_CHECK(frame_bytes > 0.0);
  capacity_frames_ = std::max(
      1u, static_cast<std::uint32_t>(std::min<double>(cache_capacity_bytes / frame_bytes, 4e9)));
}

bool AnimationReplayer::access(std::uint32_t frame) {
  ADA_CHECK(frame < frame_count_);
  ++stats_.accesses;
  const auto it = index_.find(frame);
  if (it != index_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return true;
  }
  ++stats_.misses;
  stats_.refetch_bytes += frame_bytes_;
  if (lru_.size() >= capacity_frames_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(frame);
  index_[frame] = lru_.begin();
  return false;
}

void AnimationReplayer::play_sequential() {
  for (std::uint32_t f = 0; f < frame_count_; ++f) access(f);
}

void AnimationReplayer::play_back_and_forth(std::uint32_t sweeps) {
  for (std::uint32_t s = 0; s < sweeps; ++s) {
    for (std::uint32_t f = 0; f < frame_count_; ++f) access(f);
    for (std::uint32_t f = frame_count_; f-- > 0;) access(f);
  }
}

void AnimationReplayer::play_random(std::uint32_t count, Rng& rng) {
  for (std::uint32_t i = 0; i < count; ++i) {
    access(static_cast<std::uint32_t>(rng.uniform_index(frame_count_)));
  }
}

}  // namespace ada::vmd
