// Frame store: mini-VMD's in-memory trajectory, with memory accounting.
//
// VMD holds decoded frames as an array in DRAM; that array is what blows
// past the fat node's 1 TB in the paper's Section 4.3.  The store charges
// every frame to an optional MemoryTracker so scenario pipelines observe
// exactly the allocation pattern the paper describes.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "formats/xtc_file.hpp"
#include "storage/memory.hpp"

namespace ada::vmd {

class FrameStore {
 public:
  /// `memory` may be null (no accounting); `label` names this store's
  /// charges in the tracker.
  explicit FrameStore(storage::MemoryTracker* memory = nullptr,
                      std::string label = "frame_store");
  ~FrameStore();

  FrameStore(const FrameStore&) = delete;
  FrameStore& operator=(const FrameStore&) = delete;
  FrameStore(FrameStore&&) = delete;
  FrameStore& operator=(FrameStore&&) = delete;

  /// Append a frame; fails (without storing) if the tracker reports OOM.
  Status add_frame(formats::TrajFrame frame);

  std::size_t frame_count() const noexcept { return frames_.size(); }
  const formats::TrajFrame& frame(std::size_t i) const { return frames_.at(i); }

  /// Atom count of the stored trajectory (0 when empty).
  std::uint32_t atom_count() const noexcept {
    return frames_.empty() ? 0 : frames_.front().atom_count();
  }

  /// Total charged bytes (coordinate payload + per-frame header).
  double bytes() const noexcept { return charged_bytes_; }

  /// Drop all frames and release their memory.
  void clear();

 private:
  static double frame_bytes(const formats::TrajFrame& frame) noexcept {
    // 12 bytes per atom of float coords + the frame metadata, mirroring the
    // RAW on-disk footprint (what the paper calls raw data in memory).
    return static_cast<double>(frame.coords.size()) * sizeof(float) + 44.0;
  }

  std::vector<formats::TrajFrame> frames_;
  storage::MemoryTracker* memory_;
  std::string label_;
  double charged_bytes_ = 0.0;
};

}  // namespace ada::vmd
