#include "vmd/analysis.hpp"

#include <cmath>

#include "common/check.hpp"

namespace ada::vmd {

namespace {

Status require_triplets(std::span<const float> coords, const char* what) {
  if (coords.empty() || coords.size() % 3 != 0) {
    return invalid_argument(std::string(what) + " must be nonempty xyz triplets");
  }
  return Status::ok();
}

/// Largest-eigenvalue eigenvector of a symmetric 4x4 matrix via shifted
/// power iteration (deterministic; ~60 iterations reach double precision for
/// the well-separated spectra Horn matrices have).
std::array<double, 4> dominant_eigenvector4(const double m[4][4]) {
  // Shift to make the target eigenvalue strictly dominant in magnitude.
  double shift = 0;
  for (int i = 0; i < 4; ++i) {
    double row = 0;
    for (int j = 0; j < 4; ++j) row += std::abs(m[i][j]);
    shift = std::max(shift, row);
  }
  std::array<double, 4> v = {1.0, 0.1, 0.2, 0.3};  // deterministic start
  for (int iter = 0; iter < 128; ++iter) {
    std::array<double, 4> next{};
    for (std::size_t i = 0; i < 4; ++i) {
      next[i] = shift * v[i];
      for (std::size_t j = 0; j < 4; ++j) next[i] += m[i][j] * v[j];
    }
    double norm = 0;
    for (const double x : next) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-300) return {1, 0, 0, 0};  // degenerate: identity rotation
    for (double& x : next) x /= norm;
    v = next;
  }
  return v;
}

struct Centered {
  std::vector<double> points;  // xyz triplets, centroid-subtracted
  std::array<double, 3> centroid;
};

Centered center(std::span<const float> coords) {
  Centered out;
  out.centroid = centroid(coords);
  out.points.resize(coords.size());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    out.points[i] = static_cast<double>(coords[i]) - out.centroid[i % 3];
  }
  return out;
}

}  // namespace

std::array<double, 3> centroid(std::span<const float> coords) {
  std::array<double, 3> c = {0, 0, 0};
  if (coords.empty()) return c;
  for (std::size_t i = 0; i < coords.size(); ++i) c[i % 3] += static_cast<double>(coords[i]);
  const double n = static_cast<double>(coords.size()) / 3.0;
  for (double& x : c) x /= n;
  return c;
}

Result<std::array<double, 3>> center_of_mass(std::span<const float> coords,
                                             std::span<const double> masses) {
  ADA_RETURN_IF_ERROR(require_triplets(coords, "coords"));
  if (masses.size() * 3 != coords.size()) {
    return invalid_argument("masses must be per-atom, parallel to coords");
  }
  std::array<double, 3> c = {0, 0, 0};
  double total = 0;
  for (std::size_t a = 0; a < masses.size(); ++a) {
    total += masses[a];
    for (std::size_t d = 0; d < 3; ++d) c[d] += masses[a] * static_cast<double>(coords[3 * a + d]);
  }
  if (total <= 0) return invalid_argument("total mass must be positive");
  for (double& x : c) x /= total;
  return c;
}

double radius_of_gyration(std::span<const float> coords) {
  if (coords.empty()) return 0.0;
  const auto c = centroid(coords);
  double sum = 0;
  for (std::size_t i = 0; i < coords.size(); ++i) {
    const double d = static_cast<double>(coords[i]) - c[i % 3];
    sum += d * d;
  }
  return std::sqrt(sum / (static_cast<double>(coords.size()) / 3.0));
}

Result<double> rmsd_no_align(std::span<const float> a, std::span<const float> b) {
  ADA_RETURN_IF_ERROR(require_triplets(a, "a"));
  if (a.size() != b.size()) return invalid_argument("conformations differ in size");
  double sum = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return std::sqrt(sum / (static_cast<double>(a.size()) / 3.0));
}

Result<std::array<double, 9>> kabsch_rotation(std::span<const float> mobile,
                                              std::span<const float> target) {
  ADA_RETURN_IF_ERROR(require_triplets(mobile, "mobile"));
  if (mobile.size() != target.size()) return invalid_argument("conformations differ in size");
  const Centered a = center(mobile);
  const Centered b = center(target);

  // Correlation matrix S[i][j] = sum_k a_k[i] * b_k[j].
  double s[3][3] = {};
  const std::size_t atoms = mobile.size() / 3;
  for (std::size_t k = 0; k < atoms; ++k) {
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        s[i][j] += a.points[3 * k + static_cast<std::size_t>(i)] *
                   b.points[3 * k + static_cast<std::size_t>(j)];
      }
    }
  }

  // Horn's quaternion matrix: its dominant eigenvector is the optimal
  // rotation (mapping mobile onto target) as a unit quaternion (w,x,y,z).
  const double n[4][4] = {
      {s[0][0] + s[1][1] + s[2][2], s[1][2] - s[2][1], s[2][0] - s[0][2], s[0][1] - s[1][0]},
      {s[1][2] - s[2][1], s[0][0] - s[1][1] - s[2][2], s[0][1] + s[1][0], s[2][0] + s[0][2]},
      {s[2][0] - s[0][2], s[0][1] + s[1][0], -s[0][0] + s[1][1] - s[2][2], s[1][2] + s[2][1]},
      {s[0][1] - s[1][0], s[2][0] + s[0][2], s[1][2] + s[2][1], -s[0][0] - s[1][1] + s[2][2]},
  };
  const auto q = dominant_eigenvector4(n);
  const double w = q[0];
  const double x = q[1];
  const double y = q[2];
  const double z = q[3];

  return std::array<double, 9>{
      w * w + x * x - y * y - z * z, 2 * (x * y - w * z),           2 * (x * z + w * y),
      2 * (x * y + w * z),           w * w - x * x + y * y - z * z, 2 * (y * z - w * x),
      2 * (x * z - w * y),           2 * (y * z + w * x),           w * w - x * x - y * y + z * z,
  };
}

Result<double> rmsd_aligned(std::span<const float> a, std::span<const float> b) {
  ADA_ASSIGN_OR_RETURN(const auto rotation, kabsch_rotation(a, b));
  const Centered ca = center(a);
  const Centered cb = center(b);
  const std::size_t atoms = a.size() / 3;
  double sum = 0;
  for (std::size_t k = 0; k < atoms; ++k) {
    for (std::size_t i = 0; i < 3; ++i) {
      double rotated = 0;
      for (std::size_t j = 0; j < 3; ++j) {
        rotated += rotation[3 * i + j] * ca.points[3 * k + j];
      }
      const double d = rotated - cb.points[3 * k + i];
      sum += d * d;
    }
  }
  return std::sqrt(sum / static_cast<double>(atoms));
}

Result<std::vector<double>> mean_squared_displacement(
    const std::vector<std::vector<float>>& frames) {
  if (frames.empty()) return invalid_argument("no frames");
  const std::vector<float>& reference = frames.front();
  ADA_RETURN_IF_ERROR(require_triplets(reference, "frames[0]"));
  std::vector<double> out;
  out.reserve(frames.size());
  for (const auto& frame : frames) {
    if (frame.size() != reference.size()) return invalid_argument("frames differ in size");
    double sum = 0;
    for (std::size_t i = 0; i < frame.size(); ++i) {
      const double d = static_cast<double>(frame[i]) - static_cast<double>(reference[i]);
      sum += d * d;
    }
    out.push_back(sum / (static_cast<double>(reference.size()) / 3.0));
  }
  return out;
}

Result<RdfResult> radial_distribution(std::span<const float> set_a, std::span<const float> set_b,
                                      const std::array<float, 3>& box, double r_max,
                                      std::size_t bins) {
  ADA_RETURN_IF_ERROR(require_triplets(set_a, "set_a"));
  ADA_RETURN_IF_ERROR(require_triplets(set_b, "set_b"));
  if (bins == 0 || !(r_max > 0)) return invalid_argument("need bins > 0 and r_max > 0");
  for (const float edge : box) {
    if (!(edge > 0)) return invalid_argument("box edges must be positive");
    if (r_max > static_cast<double>(edge) / 2) {
      return invalid_argument("r_max exceeds half the box edge (minimum image breaks)");
    }
  }

  RdfResult result;
  result.bin_width = r_max / static_cast<double>(bins);
  std::vector<std::uint64_t> counts(bins, 0);
  const std::size_t na = set_a.size() / 3;
  const std::size_t nb = set_b.size() / 3;
  for (std::size_t i = 0; i < na; ++i) {
    for (std::size_t j = 0; j < nb; ++j) {
      double d2 = 0;
      for (std::size_t d = 0; d < 3; ++d) {
        double diff = static_cast<double>(set_a[3 * i + d]) - static_cast<double>(set_b[3 * j + d]);
        const double edge = static_cast<double>(box[d]);
        diff -= edge * std::round(diff / edge);  // minimum image
        d2 += diff * diff;
      }
      const double r = std::sqrt(d2);
      if (r < 1e-9) continue;  // identical atom appearing in both sets
      if (r < r_max) ++counts[static_cast<std::size_t>(r / result.bin_width)];
    }
  }

  // Normalize by the ideal-gas shell expectation.
  const double volume =
      static_cast<double>(box[0]) * static_cast<double>(box[1]) * static_cast<double>(box[2]);
  const double density = static_cast<double>(nb) / volume;
  result.g.resize(bins);
  constexpr double kFourPi = 12.566370614359172;
  for (std::size_t bin = 0; bin < bins; ++bin) {
    const double r_lo = static_cast<double>(bin) * result.bin_width;
    const double r_hi = r_lo + result.bin_width;
    const double shell = kFourPi / 3.0 * (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    const double expected = static_cast<double>(na) * density * shell;
    result.g[bin] = expected > 0 ? static_cast<double>(counts[bin]) / expected : 0.0;
  }
  return result;
}

}  // namespace ada::vmd
