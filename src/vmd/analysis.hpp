// Trajectory analysis toolkit.
//
// The paper's point is that compute nodes should spend their cycles on
// "sophisticated operations" rather than re-decompressing data.  These are
// those operations: the standard structural analyses VMD users run on the
// active subset ADA delivers -- centroids, radius of gyration, RMSD with
// optimal (Kabsch) superposition, mean-squared displacement, and radial
// distribution functions.  All functions take flat xyz coordinate spans so
// they compose directly with ADA subset queries and FrameStore frames.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "common/result.hpp"

namespace ada::vmd {

/// Geometric center (equal weights), xyz.
std::array<double, 3> centroid(std::span<const float> coords);

/// Mass-weighted center; `masses` is per-atom, parallel to the triplets.
Result<std::array<double, 3>> center_of_mass(std::span<const float> coords,
                                             std::span<const double> masses);

/// Radius of gyration about the centroid (equal weights), nm.
double radius_of_gyration(std::span<const float> coords);

/// Root-mean-square deviation between two conformations, *without*
/// superposition (frames from the same trajectory share a frame of
/// reference).  Inputs must have equal, nonzero length.
Result<double> rmsd_no_align(std::span<const float> a, std::span<const float> b);

/// Optimal-superposition RMSD: translates both conformations to their
/// centroids and applies the Kabsch-optimal rotation (computed via Horn's
/// quaternion method) before measuring.  Rotation/translation-invariant.
Result<double> rmsd_aligned(std::span<const float> a, std::span<const float> b);

/// The 3x3 rotation matrix (row-major) that optimally superimposes `mobile`
/// onto `target` after centroid translation.
Result<std::array<double, 9>> kabsch_rotation(std::span<const float> mobile,
                                              std::span<const float> target);

/// Mean-squared displacement of frame `t` relative to frame 0, for each
/// frame of a trajectory (vector of per-frame MSD values, nm^2).
Result<std::vector<double>> mean_squared_displacement(
    const std::vector<std::vector<float>>& frames);

/// Radial distribution function g(r) between two atom sets in an
/// orthorhombic box (minimum-image convention).  Returns `bins` values for
/// shells of width r_max/bins.
struct RdfResult {
  double bin_width = 0;
  std::vector<double> g;  // g[i] for shell [i*bin_width, (i+1)*bin_width)
};
Result<RdfResult> radial_distribution(std::span<const float> set_a, std::span<const float> set_b,
                                      const std::array<float, 3>& box, double r_max,
                                      std::size_t bins);

}  // namespace ada::vmd
