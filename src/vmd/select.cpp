#include "vmd/select.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <vector>

#include "common/strings.hpp"

namespace ada::vmd {

// --- AST -----------------------------------------------------------------------

struct SelectionExpr::Node {
  enum class Kind {
    kOr,
    kAnd,
    kNot,
    kCategory,  // protein/water/lipid/ion/ligand/nucleic
    kAll,
    kNone,
    kHetero,
    kBackbone,
    kName,
    kResname,
    kResid,
    kIndex,
    kChain,
    kElement,
  };

  Kind kind;
  chem::Category category = chem::Category::kOther;
  std::vector<std::string> args;                         // upper-cased words
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;  // inclusive
  std::unique_ptr<Node> left;
  std::unique_ptr<Node> right;
};

SelectionExpr::SelectionExpr(std::unique_ptr<Node> root) : root_(std::move(root)) {}
SelectionExpr::SelectionExpr(SelectionExpr&&) noexcept = default;
SelectionExpr& SelectionExpr::operator=(SelectionExpr&&) noexcept = default;
SelectionExpr::~SelectionExpr() = default;

namespace {

using Node = SelectionExpr::Node;
using Kind = Node::Kind;

// --- tokenizer -------------------------------------------------------------------

struct Token {
  enum class Type { kWord, kLParen, kRParen, kEnd };
  Type type = Type::kEnd;
  std::string text;  // upper-cased for words
};

Result<std::vector<Token>> tokenize(const std::string& expression) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < expression.size()) {
    const char c = expression[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
    } else if (c == '(') {
      out.push_back({Token::Type::kLParen, "("});
      ++i;
    } else if (c == ')') {
      out.push_back({Token::Type::kRParen, ")"});
      ++i;
    } else if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '-' ||
               c == '\'' || c == '+') {
      std::size_t start = i;
      while (i < expression.size() &&
             (std::isalnum(static_cast<unsigned char>(expression[i])) != 0 ||
              expression[i] == '_' || expression[i] == '-' || expression[i] == '\'' ||
              expression[i] == '+')) {
        ++i;
      }
      out.push_back({Token::Type::kWord, to_upper(expression.substr(start, i - start))});
    } else {
      return invalid_argument(std::string("unexpected character '") + c + "' in selection");
    }
  }
  out.push_back({Token::Type::kEnd, ""});
  return out;
}

bool is_keyword(const std::string& word) {
  static const char* kKeywords[] = {"AND",    "OR",      "NOT",   "PROTEIN", "WATER",
                                    "LIPID",  "ION",     "LIGAND", "NUCLEIC", "ALL",
                                    "NONE",   "HETERO",  "BACKBONE", "NAME",  "RESNAME",
                                    "RESID",  "INDEX",   "CHAIN", "ELEMENT"};
  return std::find_if(std::begin(kKeywords), std::end(kKeywords),
                      [&](const char* k) { return word == k; }) != std::end(kKeywords);
}

// --- parser -----------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<Node>> parse() {
    ADA_ASSIGN_OR_RETURN(auto root, parse_or());
    if (peek().type != Token::Type::kEnd) {
      return invalid_argument("trailing tokens after selection: " + peek().text);
    }
    return root;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  Token take() { return tokens_[pos_++]; }

  Result<std::unique_ptr<Node>> parse_or() {
    ADA_ASSIGN_OR_RETURN(auto left, parse_and());
    while (peek().type == Token::Type::kWord && peek().text == "OR") {
      take();
      ADA_ASSIGN_OR_RETURN(auto right, parse_and());
      auto node = std::make_unique<Node>();
      node->kind = Kind::kOr;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<std::unique_ptr<Node>> parse_and() {
    ADA_ASSIGN_OR_RETURN(auto left, parse_factor());
    while (peek().type == Token::Type::kWord && peek().text == "AND") {
      take();
      ADA_ASSIGN_OR_RETURN(auto right, parse_factor());
      auto node = std::make_unique<Node>();
      node->kind = Kind::kAnd;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<std::unique_ptr<Node>> parse_factor() {
    if (peek().type == Token::Type::kWord && peek().text == "NOT") {
      take();
      ADA_ASSIGN_OR_RETURN(auto child, parse_factor());
      auto node = std::make_unique<Node>();
      node->kind = Kind::kNot;
      node->left = std::move(child);
      return node;
    }
    if (peek().type == Token::Type::kLParen) {
      take();
      ADA_ASSIGN_OR_RETURN(auto inner, parse_or());
      if (peek().type != Token::Type::kRParen) return invalid_argument("missing ')'");
      take();
      return inner;
    }
    return parse_primary();
  }

  Result<std::unique_ptr<Node>> parse_primary() {
    if (peek().type != Token::Type::kWord) {
      return invalid_argument("expected a selection keyword, got '" + peek().text + "'");
    }
    const std::string word = take().text;
    auto node = std::make_unique<Node>();

    const std::map<std::string, chem::Category> kCategories = {
        {"PROTEIN", chem::Category::kProtein}, {"WATER", chem::Category::kWater},
        {"LIPID", chem::Category::kLipid},     {"ION", chem::Category::kIon},
        {"LIGAND", chem::Category::kLigand},   {"NUCLEIC", chem::Category::kNucleic}};
    if (const auto it = kCategories.find(word); it != kCategories.end()) {
      node->kind = Kind::kCategory;
      node->category = it->second;
      return node;
    }
    if (word == "ALL") {
      node->kind = Kind::kAll;
      return node;
    }
    if (word == "NONE") {
      node->kind = Kind::kNone;
      return node;
    }
    if (word == "HETERO") {
      node->kind = Kind::kHetero;
      return node;
    }
    if (word == "BACKBONE") {
      node->kind = Kind::kBackbone;
      return node;
    }
    if (word == "NAME" || word == "RESNAME" || word == "CHAIN" || word == "ELEMENT") {
      node->kind = word == "NAME"      ? Kind::kName
                   : word == "RESNAME" ? Kind::kResname
                   : word == "CHAIN"   ? Kind::kChain
                                       : Kind::kElement;
      while (peek().type == Token::Type::kWord && !is_keyword(peek().text)) {
        node->args.push_back(take().text);
      }
      if (node->args.empty()) return invalid_argument(word + " needs at least one value");
      return node;
    }
    if (word == "RESID" || word == "INDEX") {
      node->kind = word == "RESID" ? Kind::kResid : Kind::kIndex;
      while (peek().type == Token::Type::kWord && !is_keyword(peek().text)) {
        const std::string item = take().text;
        const auto dash = item.find('-');
        long long lo = 0;
        long long hi = 0;
        if (dash == std::string::npos) {
          lo = hi = parse_int(item);
        } else {
          lo = parse_int(item.substr(0, dash));
          hi = parse_int(item.substr(dash + 1));
        }
        if (lo < 0 || hi < lo) return invalid_argument("bad numeric range: " + item);
        node->ranges.emplace_back(static_cast<std::uint32_t>(lo), static_cast<std::uint32_t>(hi));
      }
      if (node->ranges.empty()) return invalid_argument(word + " needs at least one range");
      return node;
    }
    return invalid_argument("unknown selection keyword: " + word);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

// --- evaluation -------------------------------------------------------------------

bool contains_word(const std::vector<std::string>& args, const std::string& value) {
  return std::find(args.begin(), args.end(), value) != args.end();
}

chem::Selection evaluate_node(const Node& node, const chem::System& system) {
  const std::uint32_t n = system.atom_count();
  switch (node.kind) {
    case Kind::kOr:
      return evaluate_node(*node.left, system).unite(evaluate_node(*node.right, system));
    case Kind::kAnd:
      return evaluate_node(*node.left, system).intersect(evaluate_node(*node.right, system));
    case Kind::kNot:
      return evaluate_node(*node.left, system).complement(n);
    case Kind::kAll:
      return chem::Selection::all(n);
    case Kind::kNone:
      return chem::Selection();
    case Kind::kIndex: {
      chem::Selection s;
      for (const auto& [lo, hi] : node.ranges) {
        if (lo >= n) continue;
        s.add_run({lo, std::min(hi + 1, n)});
      }
      return s;
    }
    default:
      break;
  }

  // Per-atom predicates share one scan.
  chem::Selection s;
  for (std::uint32_t i = 0; i < n; ++i) {
    const chem::Atom& atom = system.atom(i);
    bool match = false;
    switch (node.kind) {
      case Kind::kCategory:
        match = system.category(i) == node.category;
        break;
      case Kind::kHetero:
        match = atom.hetatm;
        break;
      case Kind::kBackbone:
        match = system.category(i) == chem::Category::kProtein &&
                (atom.name == "N" || atom.name == "CA" || atom.name == "C" || atom.name == "O");
        break;
      case Kind::kName:
        match = contains_word(node.args, to_upper(atom.name));
        break;
      case Kind::kResname:
        match = contains_word(node.args, to_upper(atom.residue_name));
        break;
      case Kind::kChain:
        match = contains_word(node.args, std::string(1, static_cast<char>(std::toupper(
                                             static_cast<unsigned char>(atom.chain_id)))));
        break;
      case Kind::kElement:
        match = contains_word(node.args, to_upper(std::string(chem::symbol(atom.element))));
        break;
      case Kind::kResid:
        for (const auto& [lo, hi] : node.ranges) {
          if (atom.residue_seq >= lo && atom.residue_seq <= hi) {
            match = true;
            break;
          }
        }
        break;
      default:
        break;
    }
    if (match) s.add_index(i);
  }
  return s;
}

std::string node_to_string(const Node& node) {
  auto join = [](const std::vector<std::string>& args) {
    std::string out;
    for (const auto& a : args) out += " " + a;
    return out;
  };
  switch (node.kind) {
    case Kind::kOr:
      return "(" + node_to_string(*node.left) + " or " + node_to_string(*node.right) + ")";
    case Kind::kAnd:
      return "(" + node_to_string(*node.left) + " and " + node_to_string(*node.right) + ")";
    case Kind::kNot:
      return "(not " + node_to_string(*node.left) + ")";
    case Kind::kCategory:
      return std::string(chem::category_name(node.category));
    case Kind::kAll: return "all";
    case Kind::kNone: return "none";
    case Kind::kHetero: return "hetero";
    case Kind::kBackbone: return "backbone";
    case Kind::kName: return "name" + join(node.args);
    case Kind::kResname: return "resname" + join(node.args);
    case Kind::kChain: return "chain" + join(node.args);
    case Kind::kElement: return "element" + join(node.args);
    case Kind::kResid:
    case Kind::kIndex: {
      std::string out = node.kind == Kind::kResid ? "resid" : "index";
      for (const auto& [lo, hi] : node.ranges) {
        out += " " + std::to_string(lo);
        if (hi != lo) out += "-" + std::to_string(hi);
      }
      return out;
    }
  }
  return "?";
}

}  // namespace

Result<SelectionExpr> SelectionExpr::parse(const std::string& expression) {
  ADA_ASSIGN_OR_RETURN(auto tokens, tokenize(expression));
  Parser parser(std::move(tokens));
  ADA_ASSIGN_OR_RETURN(auto root, parser.parse());
  return SelectionExpr(std::move(root));
}

chem::Selection SelectionExpr::evaluate(const chem::System& system) const {
  return evaluate_node(*root_, system);
}

std::string SelectionExpr::to_string() const { return node_to_string(*root_); }

Result<chem::Selection> atom_select(const chem::System& system, const std::string& expression) {
  ADA_ASSIGN_OR_RETURN(const SelectionExpr expr, SelectionExpr::parse(expression));
  return expr.evaluate(system);
}

}  // namespace ada::vmd
