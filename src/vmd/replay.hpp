// Animation replayer: frame-cache behaviour under playback access patterns.
//
// Paper Section 2.1: "Recently retrieved frames should be evacuated from the
// limited memory to make room for subsequent phases of frames.  Frequent
// data swapping operations cause a low data hit rate under random frames
// accesses (e.g., replaying the frames back and forth)".  The replayer
// models exactly that: an LRU cache of frames sized by available memory, and
// access patterns (sequential sweep, back-and-forth, random seek) whose hit
// rates and refetch volume quantify the non-fluent-playback effect -- and
// why ADA's smaller frames (protein only) raise the hit rate.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/rng.hpp"

namespace ada::vmd {

struct ReplayStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double refetch_bytes = 0.0;  // bytes re-read from storage on misses

  double hit_rate() const noexcept {
    return accesses == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(accesses);
  }
};

class AnimationReplayer {
 public:
  /// `frame_count` frames of `frame_bytes` each; the cache holds at most
  /// `cache_capacity_bytes` worth of frames (at least one).
  AnimationReplayer(std::uint32_t frame_count, double frame_bytes, double cache_capacity_bytes);

  /// Access one frame; updates stats and the LRU state.
  /// Returns true on a cache hit.
  bool access(std::uint32_t frame);

  /// One forward sweep 0..frame_count-1.
  void play_sequential();

  /// `sweeps` forward-backward passes (the paper's "back and forth").
  void play_back_and_forth(std::uint32_t sweeps);

  /// `count` uniform random seeks.
  void play_random(std::uint32_t count, Rng& rng);

  const ReplayStats& stats() const noexcept { return stats_; }
  std::uint32_t cached_frames() const noexcept { return static_cast<std::uint32_t>(lru_.size()); }
  std::uint32_t cache_capacity_frames() const noexcept { return capacity_frames_; }

 private:
  std::uint32_t frame_count_;
  double frame_bytes_;
  std::uint32_t capacity_frames_;
  std::list<std::uint32_t> lru_;  // front = most recent
  std::unordered_map<std::uint32_t, std::list<std::uint32_t>::iterator> index_;
  ReplayStats stats_;
};

}  // namespace ada::vmd
