// MolSession: mini-VMD's molecule state machine.
//
// Mirrors the VMD workflow the paper modifies (Section 3.4):
//
//   $ mol new foo.pdb                    -> structure loaded, categorized
//   $ mol addfile /mnt/bar.xtc           -> trajectory frames appended
//   $ mol addfile /mnt/bar.xtc tag p     -> ADA-backed: only the "p" subset
//
// addfile resolves through the ADA middleware when one is attached and the
// dataset was ingested; otherwise it falls back to plain file loading with
// format sniffing (XTC -> decompress, RAW -> direct).  Load phases are
// accounted in the session's PhaseProfiler (real measured CPU seconds), the
// functional counterpart of the paper's Fig. 8.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "ada/middleware.hpp"
#include "chem/system.hpp"
#include "common/result.hpp"
#include "vmd/frame_store.hpp"
#include "vmd/profiler.hpp"
#include "vmd/renderer.hpp"

namespace ada::vmd {

class MolSession {
 public:
  /// `ada` (optional) enables tag-aware addfile; `memory` (optional) meters
  /// the frame store.
  explicit MolSession(core::Ada* ada = nullptr, storage::MemoryTracker* memory = nullptr);

  // --- structure ($ mol new) -------------------------------------------------
  Status mol_new_text(const std::string& pdb_text);
  Status mol_new_file(const std::string& path);
  Status mol_new_system(chem::System system);

  bool has_molecule() const noexcept { return system_ != nullptr; }
  const chem::System& system() const;

  // --- trajectory ($ mol addfile) ---------------------------------------------
  /// Load a trajectory.  With a tag, the data comes from ADA's tagged subset
  /// (middleware required); without one, either the ADA dataset's full
  /// reconstruction or a plain host file.
  Status mol_addfile(const std::string& path, const std::optional<core::Tag>& tag = std::nullopt);

  FrameStore& frames() noexcept { return frames_; }
  const FrameStore& frames() const noexcept { return frames_; }

  /// Atoms covered by the loaded frames (all atoms, or the tag's subset).
  const chem::Selection& loaded_selection() const noexcept { return loaded_selection_; }

  // --- rendering ----------------------------------------------------------------
  /// Render frame `index` of the loaded subset (non-const: accounts the
  /// render phase in the profiler).
  Result<RenderResult> render(std::size_t index, const RenderOptions& options = {});

  PhaseProfiler& profiler() noexcept { return profiler_; }
  const PhaseProfiler& profiler() const noexcept { return profiler_; }

 private:
  Status addfile_via_ada(const std::string& logical_name, const std::optional<core::Tag>& tag);
  Status addfile_host(const std::string& path);
  Status load_raw_image(std::span<const std::uint8_t> image, chem::Selection selection);
  Status load_xtc_image(std::span<const std::uint8_t> image);
  Status load_trr_image(std::span<const std::uint8_t> image);

  core::Ada* ada_;
  std::unique_ptr<chem::System> system_;
  FrameStore frames_;
  chem::Selection loaded_selection_;
  PhaseProfiler profiler_;
};

/// "/mnt/bar.xtc" -> "bar.xtc" (the logical dataset name ADA ingested under).
std::string logical_name_of(const std::string& path);

}  // namespace ada::vmd
