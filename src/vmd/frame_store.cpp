#include "vmd/frame_store.hpp"

namespace ada::vmd {

FrameStore::FrameStore(storage::MemoryTracker* memory, std::string label)
    : memory_(memory), label_(std::move(label)) {}

FrameStore::~FrameStore() { clear(); }

Status FrameStore::add_frame(formats::TrajFrame frame) {
  if (!frames_.empty() && frame.atom_count() != atom_count()) {
    return invalid_argument("frame atom count " + std::to_string(frame.atom_count()) +
                            " differs from store's " + std::to_string(atom_count()));
  }
  const double bytes = frame_bytes(frame);
  if (memory_ != nullptr) {
    // Charge incrementally under a per-store label: the tracker keeps one
    // aggregate figure per label, so free-on-clear stays O(1).
    ADA_RETURN_IF_ERROR(memory_->allocate(label_, bytes));
  }
  charged_bytes_ += bytes;
  frames_.push_back(std::move(frame));
  return Status::ok();
}

void FrameStore::clear() {
  frames_.clear();
  if (memory_ != nullptr) memory_->free(label_);
  charged_bytes_ = 0.0;
}

}  // namespace ada::vmd
