#include "vmd/geometry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/check.hpp"

namespace ada::vmd {

namespace {

struct CellKey {
  std::int32_t x;
  std::int32_t y;
  std::int32_t z;
  friend bool operator==(const CellKey&, const CellKey&) = default;
};

struct CellHash {
  std::size_t operator()(const CellKey& k) const noexcept {
    // 3D integer hash (large-prime mix).
    const auto ux = static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.x));
    const auto uy = static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.y));
    const auto uz = static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.z));
    return static_cast<std::size_t>(ux * 73856093ull ^ uy * 19349663ull ^ uz * 83492791ull);
  }
};

}  // namespace

std::vector<Bond> find_bonds(std::span<const float> coords, std::span<const float> radii,
                             float tolerance) {
  ADA_CHECK(coords.size() == radii.size() * 3);
  const std::size_t n = radii.size();
  std::vector<Bond> bonds;
  if (n < 2) return bonds;

  float max_radius = 0.0f;
  for (const float r : radii) max_radius = std::max(max_radius, r);
  const float cutoff = tolerance * 2.0f * max_radius;
  ADA_CHECK(cutoff > 0.0f);
  const float cell = cutoff;

  // Bucket atoms into cells.
  std::unordered_map<CellKey, std::vector<std::uint32_t>, CellHash> grid;
  grid.reserve(n);
  auto key_of = [cell](const float* p) {
    return CellKey{static_cast<std::int32_t>(std::floor(p[0] / cell)),
                   static_cast<std::int32_t>(std::floor(p[1] / cell)),
                   static_cast<std::int32_t>(std::floor(p[2] / cell))};
  };
  for (std::uint32_t i = 0; i < n; ++i) {
    grid[key_of(&coords[3 * i])].push_back(i);
  }

  // For each atom, scan its 27-cell neighborhood; emit each pair once (a<b).
  for (std::uint32_t i = 0; i < n; ++i) {
    const float* pi = &coords[3 * i];
    const CellKey center = key_of(pi);
    for (std::int32_t dz = -1; dz <= 1; ++dz) {
      for (std::int32_t dy = -1; dy <= 1; ++dy) {
        for (std::int32_t dx = -1; dx <= 1; ++dx) {
          const auto it = grid.find(CellKey{center.x + dx, center.y + dy, center.z + dz});
          if (it == grid.end()) continue;
          for (const std::uint32_t j : it->second) {
            if (j <= i) continue;
            const float* pj = &coords[3 * j];
            const float ddx = pi[0] - pj[0];
            const float ddy = pi[1] - pj[1];
            const float ddz = pi[2] - pj[2];
            const float dist2 = ddx * ddx + ddy * ddy + ddz * ddz;
            const float limit = tolerance * (radii[i] + radii[j]);
            if (dist2 < limit * limit && dist2 > 1e-8f) {
              bonds.push_back(Bond{i, j});
            }
          }
        }
      }
    }
  }
  std::sort(bonds.begin(), bonds.end(), [](const Bond& a, const Bond& b) {
    return a.a != b.a ? a.a < b.a : a.b < b.b;
  });
  return bonds;
}

std::vector<float> subset_radii(const chem::System& system, const chem::Selection& selection) {
  std::vector<float> out;
  out.reserve(static_cast<std::size_t>(selection.count()));
  for (const chem::Run& run : selection.runs()) {
    ADA_CHECK(run.end <= system.atom_count());
    for (std::uint32_t i = run.begin; i < run.end; ++i) {
      out.push_back(static_cast<float>(chem::vdw_radius_nm(system.atom(i).element)));
    }
  }
  return out;
}

GeometryStats build_geometry(std::span<const float> coords, std::span<const float> radii) {
  GeometryStats stats;
  stats.atoms = radii.size();
  stats.sphere_count = radii.size();
  const auto bonds = find_bonds(coords, radii);
  stats.bonds = bonds.size();
  stats.line_vertices = 2 * bonds.size();
  return stats;
}

}  // namespace ada::vmd
