#include "vmd/mol.hpp"

#include <cstring>

#include "common/binary_io.hpp"
#include "common/stopwatch.hpp"
#include "formats/pdb.hpp"
#include "formats/raw_traj.hpp"
#include "formats/trr_file.hpp"
#include "formats/xtc_file.hpp"

namespace ada::vmd {

std::string logical_name_of(const std::string& path) {
  const auto slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

MolSession::MolSession(core::Ada* ada, storage::MemoryTracker* memory)
    : ada_(ada), frames_(memory) {}

const chem::System& MolSession::system() const {
  ADA_CHECK(system_ != nullptr);
  return *system_;
}

Status MolSession::mol_new_text(const std::string& pdb_text) {
  Stopwatch stopwatch;
  ADA_ASSIGN_OR_RETURN(chem::System system, formats::parse_pdb(pdb_text));
  profiler_.add("vmd;load;structure", stopwatch.elapsed_seconds());
  return mol_new_system(std::move(system));
}

Status MolSession::mol_new_file(const std::string& path) {
  ADA_ASSIGN_OR_RETURN(const auto bytes, read_file(path));
  return mol_new_text(std::string(bytes.begin(), bytes.end()));
}

Status MolSession::mol_new_system(chem::System system) {
  system_ = std::make_unique<chem::System>(std::move(system));
  frames_.clear();
  loaded_selection_ = chem::Selection::all(system_->atom_count());
  return Status::ok();
}

Status MolSession::mol_addfile(const std::string& path, const std::optional<core::Tag>& tag) {
  if (system_ == nullptr) {
    return failed_precondition("no molecule loaded: run 'mol new <structure.pdb>' first");
  }
  const std::string logical = logical_name_of(path);
  if (ada_ != nullptr && ada_->has_dataset(logical)) {
    return addfile_via_ada(logical, tag);
  }
  if (tag.has_value()) {
    return failed_precondition("tagged loads need the ADA middleware and an ingested dataset");
  }
  return addfile_host(path);
}

Status MolSession::addfile_via_ada(const std::string& logical_name,
                                   const std::optional<core::Tag>& tag) {
  ADA_ASSIGN_OR_RETURN(const core::LabelMap labels, ada_->labels(logical_name));
  if (labels.atom_count != system_->atom_count()) {
    return failed_precondition("dataset " + logical_name + " was ingested with " +
                               std::to_string(labels.atom_count) + " atoms, molecule has " +
                               std::to_string(system_->atom_count()));
  }

  if (tag.has_value()) {
    // $ mol addfile bar.xtc tag p -- a single tagged subset, already raw.
    ADA_ASSIGN_OR_RETURN(const chem::Selection selection, labels.selection(*tag));
    Stopwatch stopwatch;
    ADA_ASSIGN_OR_RETURN(const auto image, ada_->query(logical_name, *tag));
    profiler_.add("vmd;load;read", stopwatch.elapsed_seconds());
    return load_raw_image(image, selection);
  }

  // ADA (all): retrieve every subset and scatter them back into full frames.
  Stopwatch read_watch;
  std::vector<std::pair<chem::Selection, std::vector<std::uint8_t>>> subsets;
  for (const core::Tag& t : labels.tags()) {
    ADA_ASSIGN_OR_RETURN(const auto image, ada_->query(logical_name, t));
    subsets.emplace_back(labels.groups.at(t), image);
  }
  profiler_.add("vmd;load;read", read_watch.elapsed_seconds());

  Stopwatch merge_watch;
  std::vector<std::unique_ptr<formats::RawTrajCatReader>> readers;
  std::uint32_t frame_count = 0;
  for (auto& [selection, image] : subsets) {
    ADA_ASSIGN_OR_RETURN(auto reader, formats::RawTrajCatReader::open(image));
    if (readers.empty()) {
      frame_count = reader.frame_count();
    } else if (reader.frame_count() != frame_count) {
      return corrupt_data("subsets of " + logical_name + " disagree on frame count");
    }
    readers.push_back(std::make_unique<formats::RawTrajCatReader>(reader));
  }
  for (std::uint32_t f = 0; f < frame_count; ++f) {
    formats::TrajFrame merged;
    merged.coords.resize(std::size_t{3} * system_->atom_count());
    for (std::size_t s = 0; s < readers.size(); ++s) {
      ADA_ASSIGN_OR_RETURN(const formats::TrajFrame piece, readers[s]->frame(f));
      merged.step = piece.step;
      merged.time_ps = piece.time_ps;
      merged.box = piece.box;
      // Scatter the subset's contiguous coords back to global positions.
      std::size_t cursor = 0;
      for (const chem::Run& run : subsets[s].first.runs()) {
        std::memcpy(&merged.coords[std::size_t{3} * run.begin], &piece.coords[cursor],
                    sizeof(float) * 3 * run.size());
        cursor += std::size_t{3} * run.size();
      }
    }
    ADA_RETURN_IF_ERROR(frames_.add_frame(std::move(merged)));
  }
  profiler_.add("vmd;load;merge", merge_watch.elapsed_seconds());
  loaded_selection_ = chem::Selection::all(system_->atom_count());
  return Status::ok();
}

Status MolSession::addfile_host(const std::string& path) {
  Stopwatch stopwatch;
  ADA_ASSIGN_OR_RETURN(const auto image, read_file(path));
  profiler_.add("vmd;load;read", stopwatch.elapsed_seconds());
  // Sniff the container format.
  if (image.size() >= 8 && std::memcmp(image.data(), formats::kRawMagic, 8) == 0) {
    return load_raw_image(image, chem::Selection::all(system_->atom_count()));
  }
  if (formats::looks_like_trr(image)) return load_trr_image(image);
  return load_xtc_image(image);
}

Status MolSession::load_trr_image(std::span<const std::uint8_t> image) {
  Stopwatch stopwatch;
  formats::TrrReader reader(image);
  while (true) {
    ADA_ASSIGN_OR_RETURN(auto frame, reader.next());
    if (!frame.has_value()) break;
    if (frame->atom_count() != system_->atom_count()) {
      return corrupt_data("trr frame has " + std::to_string(frame->atom_count()) +
                          " atoms, molecule has " + std::to_string(system_->atom_count()));
    }
    ADA_RETURN_IF_ERROR(frames_.add_frame(frame->to_traj_frame()));
  }
  // TRR is uncompressed: this is plain frame ingestion, not a decode burst.
  profiler_.add("vmd;load;frames", stopwatch.elapsed_seconds());
  loaded_selection_ = chem::Selection::all(system_->atom_count());
  return Status::ok();
}

Status MolSession::load_raw_image(std::span<const std::uint8_t> image, chem::Selection selection) {
  // Cat reader: tagged subsets may be stored as several chunk droppings.
  ADA_ASSIGN_OR_RETURN(const auto reader, formats::RawTrajCatReader::open(image));
  if (reader.atom_count() != selection.count()) {
    return corrupt_data("raw trajectory atom count " + std::to_string(reader.atom_count()) +
                        " does not match the selection's " + std::to_string(selection.count()));
  }
  Stopwatch stopwatch;
  for (std::uint32_t f = 0; f < reader.frame_count(); ++f) {
    ADA_ASSIGN_OR_RETURN(formats::TrajFrame frame, reader.frame(f));
    ADA_RETURN_IF_ERROR(frames_.add_frame(std::move(frame)));
  }
  profiler_.add("vmd;load;frames", stopwatch.elapsed_seconds());
  loaded_selection_ = std::move(selection);
  return Status::ok();
}

Status MolSession::load_xtc_image(std::span<const std::uint8_t> image) {
  Stopwatch stopwatch;
  formats::XtcReader reader(image);
  std::uint32_t frames = 0;
  while (true) {
    ADA_ASSIGN_OR_RETURN(auto frame, reader.next());
    if (!frame.has_value()) break;
    if (frame->atom_count() != system_->atom_count()) {
      return corrupt_data("xtc frame has " + std::to_string(frame->atom_count()) +
                          " atoms, molecule has " + std::to_string(system_->atom_count()));
    }
    ADA_RETURN_IF_ERROR(frames_.add_frame(std::move(*frame)));
    ++frames;
  }
  // The whole loop is decompression-dominated: this is the repeated
  // pre-processing cost ADA eliminates (paper Fig. 8).
  profiler_.add("vmd;load;decompress", stopwatch.elapsed_seconds());
  loaded_selection_ = chem::Selection::all(system_->atom_count());
  return Status::ok();
}

Result<RenderResult> MolSession::render(std::size_t index, const RenderOptions& options) {
  if (system_ == nullptr) return failed_precondition("no molecule loaded");
  if (index >= frames_.frame_count()) {
    return out_of_range("frame " + std::to_string(index) + " of " +
                        std::to_string(frames_.frame_count()));
  }
  const formats::TrajFrame& frame = frames_.frame(index);
  const auto radii = subset_radii(*system_, loaded_selection_);
  std::vector<chem::Category> categories;
  categories.reserve(radii.size());
  for (const chem::Run& run : loaded_selection_.runs()) {
    for (std::uint32_t i = run.begin; i < run.end; ++i) {
      categories.push_back(system_->category(i));
    }
  }
  Stopwatch stopwatch;
  auto result = render_frame(frame.coords, radii, categories, options);
  // Render-phase CPU accounting happens on success only.
  if (result.is_ok()) profiler_.add("vmd;render", stopwatch.elapsed_seconds());
  return result;
}

}  // namespace ada::vmd
