// Software renderer: orthographic splat rendering of a frame to an RGB image.
//
// Mini-VMD's stand-in for VMD's OpenGL pipeline: enough to produce the
// paper's Fig. 1-style pictures (full system / protein subset / MISC subset)
// from real coordinates, and to give the render phase genuine per-atom work.
// Atoms are depth-sorted and splatted as shaded discs along the chosen axis.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "chem/classify.hpp"
#include "common/result.hpp"
#include "vmd/geometry.hpp"

namespace ada::vmd {

/// Simple RGB8 image.
struct Image {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::vector<std::uint8_t> rgb;  // 3 bytes/pixel, row-major

  /// Binary PPM (P6) encoding.
  std::vector<std::uint8_t> to_ppm() const;
};

struct RenderOptions {
  std::uint32_t width = 480;
  std::uint32_t height = 480;
  int view_axis = 2;        // project along z (0=x, 1=y, 2=z)
  float splat_scale = 1.0f; // multiplies VDW radii on screen
};

/// Per-category display colors (VMD-ish defaults).
void category_color(chem::Category category, std::uint8_t* rgb_out);

/// Render one frame: `categories` is parallel to atoms (colors), `radii`
/// gives splat sizes.  Returns the image plus scene statistics.
struct RenderResult {
  Image image;
  GeometryStats stats;
};
Result<RenderResult> render_frame(std::span<const float> coords, std::span<const float> radii,
                                  std::span<const chem::Category> categories,
                                  const RenderOptions& options = {});

/// Write an image as a .ppm file on the host.
Status write_ppm(const std::string& path, const Image& image);

}  // namespace ada::vmd
