// Atom-selection language: VMD's iconic `atomselect` expressions, the
// query surface biologists actually type.
//
// Grammar (case-insensitive keywords, standard precedence NOT > AND > OR):
//
//   expr     := term (OR term)*
//   term     := factor (AND factor)*
//   factor   := NOT factor | '(' expr ')' | primary
//   primary  := 'protein' | 'water' | 'lipid' | 'ion' | 'ligand' | 'nucleic'
//             | 'all' | 'none' | 'hetero' | 'backbone'
//             | 'name'    <atom name>+
//             | 'resname' <residue name>+
//             | 'resid'   <n | n-m>+
//             | 'index'   <n | n-m>+
//             | 'chain'   <id>+
//             | 'element' <symbol>+
//
// Examples the examples/ directory uses:
//   "protein and backbone"
//   "resname POPC or water"
//   "protein and not name CA CB"
//   "index 0-99 or resid 5-10"
//
// Evaluation returns a chem::Selection (run-list), so selections compose
// with ADA's label maps and subset extraction directly.
#pragma once

#include <memory>
#include <string>

#include "chem/selection.hpp"
#include "chem/system.hpp"
#include "common/result.hpp"

namespace ada::vmd {

/// Parse + evaluate an expression against a system.
Result<chem::Selection> atom_select(const chem::System& system, const std::string& expression);

/// A parsed expression, reusable across systems/frames.
class SelectionExpr {
 public:
  static Result<SelectionExpr> parse(const std::string& expression);

  SelectionExpr(SelectionExpr&&) noexcept;
  SelectionExpr& operator=(SelectionExpr&&) noexcept;
  ~SelectionExpr();

  chem::Selection evaluate(const chem::System& system) const;

  /// Canonical text form (normalized spacing/case) for diagnostics.
  std::string to_string() const;

  /// AST node; defined in the implementation file (opaque to users).
  struct Node;

 private:
  explicit SelectionExpr(std::unique_ptr<Node> root);
  std::unique_ptr<Node> root_;
};

}  // namespace ada::vmd
