// Command interpreter: the paper's modified VMD command-line surface.
//
// Executes the command strings Section 3.4 shows verbatim:
//
//   mol new foo.pdb
//   mol addfile /mnt/bar.xtc
//   mol addfile /mnt/bar.xtc tag p
//   animate goto 12
//   render snapshot out.ppm
//   mol info
//   atomselect protein and backbone
//   measure rgyr
//   measure rmsd 0 12
//
// Each command returns a short human-readable status string (what VMD would
// print to its console).
#pragma once

#include <string>

#include "common/result.hpp"
#include "vmd/mol.hpp"

namespace ada::vmd {

class CommandInterpreter {
 public:
  explicit CommandInterpreter(MolSession& session) : session_(session) {}

  /// Execute one command line; returns the console output.
  Result<std::string> execute(const std::string& line);

  std::size_t current_frame() const noexcept { return current_frame_; }

 private:
  Result<std::string> cmd_mol(const std::vector<std::string>& args);
  Result<std::string> cmd_animate(const std::vector<std::string>& args);
  Result<std::string> cmd_render(const std::vector<std::string>& args);
  Result<std::string> cmd_atomselect(const std::string& line);
  Result<std::string> cmd_measure(const std::vector<std::string>& args);

  MolSession& session_;
  std::size_t current_frame_ = 0;
};

}  // namespace ada::vmd
