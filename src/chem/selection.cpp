#include "chem/selection.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace ada::chem {

void Selection::normalize() {
  std::erase_if(runs_, [](const Run& r) { return r.begin >= r.end; });
  std::sort(runs_.begin(), runs_.end(),
            [](const Run& a, const Run& b) { return a.begin < b.begin; });
  std::vector<Run> merged;
  for (const Run& r : runs_) {
    if (!merged.empty() && r.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, r.end);
    } else {
      merged.push_back(r);
    }
  }
  runs_ = std::move(merged);
}

Selection Selection::from_runs(std::vector<Run> runs) {
  Selection s;
  s.runs_ = std::move(runs);
  s.normalize();
  return s;
}

Selection Selection::from_indices(std::vector<std::uint32_t> indices) {
  std::sort(indices.begin(), indices.end());
  Selection s;
  for (std::uint32_t i : indices) s.add_run({i, i + 1});
  return s;
}

Selection Selection::all(std::uint32_t n) {
  Selection s;
  if (n > 0) s.runs_.push_back({0, n});
  return s;
}

void Selection::add_run(Run run) {
  if (run.begin >= run.end) return;
  if (runs_.empty() || run.begin > runs_.back().end) {
    runs_.push_back(run);
    return;
  }
  if (run.begin >= runs_.back().begin) {
    // Adjacent or overlapping with the last run: extend in place.
    runs_.back().end = std::max(runs_.back().end, run.end);
    return;
  }
  runs_.push_back(run);
  normalize();
}

std::uint64_t Selection::count() const noexcept {
  std::uint64_t n = 0;
  for (const Run& r : runs_) n += r.size();
  return n;
}

bool Selection::contains(std::uint32_t index) const noexcept {
  auto it = std::upper_bound(runs_.begin(), runs_.end(), index,
                             [](std::uint32_t v, const Run& r) { return v < r.begin; });
  if (it == runs_.begin()) return false;
  --it;
  return index >= it->begin && index < it->end;
}

Selection Selection::unite(const Selection& other) const {
  std::vector<Run> runs = runs_;
  runs.insert(runs.end(), other.runs_.begin(), other.runs_.end());
  return from_runs(std::move(runs));
}

Selection Selection::intersect(const Selection& other) const {
  Selection out;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < runs_.size() && j < other.runs_.size()) {
    const Run& a = runs_[i];
    const Run& b = other.runs_[j];
    const std::uint32_t lo = std::max(a.begin, b.begin);
    const std::uint32_t hi = std::min(a.end, b.end);
    if (lo < hi) out.runs_.push_back({lo, hi});
    if (a.end < b.end) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

Selection Selection::complement(std::uint32_t universe) const {
  Selection out;
  std::uint32_t cursor = 0;
  for (const Run& r : runs_) {
    if (r.begin >= universe) break;
    if (cursor < r.begin) out.runs_.push_back({cursor, std::min(r.begin, universe)});
    cursor = std::max(cursor, r.end);
  }
  if (cursor < universe) out.runs_.push_back({cursor, universe});
  return out;
}

std::vector<std::uint32_t> Selection::to_indices() const {
  std::vector<std::uint32_t> out;
  out.reserve(static_cast<std::size_t>(count()));
  for (const Run& r : runs_) {
    for (std::uint32_t i = r.begin; i < r.end; ++i) out.push_back(i);
  }
  return out;
}

std::string Selection::to_string() const {
  std::string out;
  for (const Run& r : runs_) {
    if (!out.empty()) out += ',';
    out += std::to_string(r.begin);
    if (r.size() > 1) {
      out += '-';
      out += std::to_string(r.end - 1);
    }
  }
  return out;
}

Result<Selection> Selection::parse(const std::string& text) {
  Selection s;
  if (trim(text).empty()) return s;
  for (const std::string& part : split(text, ',')) {
    const auto dash = part.find('-');
    if (dash == std::string::npos) {
      const long long v = parse_int(part);
      if (v < 0) return corrupt_data("bad selection element: " + part);
      s.add_run({static_cast<std::uint32_t>(v), static_cast<std::uint32_t>(v) + 1});
    } else {
      const long long lo = parse_int(part.substr(0, dash));
      const long long hi = parse_int(part.substr(dash + 1));
      if (lo < 0 || hi < lo) return corrupt_data("bad selection range: " + part);
      s.add_run({static_cast<std::uint32_t>(lo), static_cast<std::uint32_t>(hi) + 1});
    }
  }
  return s;
}

}  // namespace ada::chem
