// Chemical elements: the subset occurring in biomolecular simulations.
#pragma once

#include <string>
#include <string_view>

namespace ada::chem {

enum class Element {
  kUnknown = 0,
  kHydrogen,
  kCarbon,
  kNitrogen,
  kOxygen,
  kSodium,
  kMagnesium,
  kPhosphorus,
  kSulfur,
  kChlorine,
  kPotassium,
  kCalcium,
  kIron,
  kZinc,
};

/// Standard one/two-letter symbol ("C", "Na", ...).
std::string_view symbol(Element e) noexcept;

/// Atomic mass in daltons (standard atomic weight).
double atomic_mass(Element e) noexcept;

/// Van der Waals radius in nanometers (Bondi radii); used by the renderer's
/// VDW representation and the bond-search cutoff heuristic.
double vdw_radius_nm(Element e) noexcept;

/// Parse an element from a PDB atom name (columns 13-16) or element field.
/// Follows the PDB convention: a digit-stripped, left-trimmed name whose
/// first characters name the element ("CA" in a protein residue is carbon;
/// "NA" in an ion residue is sodium -- the caller passes `is_ion_residue`).
Element element_from_atom_name(std::string_view atom_name, bool is_ion_residue = false) noexcept;

}  // namespace ada::chem
