#include "chem/system.hpp"

namespace ada::chem {

void System::add_atom(Atom atom, float x, float y, float z) {
  categories_.push_back(classify_residue(atom.residue_name, atom.hetatm));
  if (atom.element == Element::kUnknown) {
    atom.element = element_from_atom_name(atom.name, categories_.back() == Category::kIon);
  }
  atoms_.push_back(std::move(atom));
  coords_.push_back(x);
  coords_.push_back(y);
  coords_.push_back(z);
}

Selection System::selection_for(Category category) const {
  Selection s;
  for (std::uint32_t i = 0; i < atom_count(); ++i) {
    if (categories_[i] == category) s.add_index(i);
  }
  return s;
}

std::uint32_t System::count_category(Category category) const {
  std::uint32_t n = 0;
  for (const Category c : categories_) {
    if (c == category) ++n;
  }
  return n;
}

std::uint32_t System::residue_count() const {
  std::uint32_t n = 0;
  for (std::uint32_t i = 0; i < atom_count(); ++i) {
    if (i == 0 || atoms_[i].residue_seq != atoms_[i - 1].residue_seq ||
        atoms_[i].chain_id != atoms_[i - 1].chain_id ||
        atoms_[i].residue_name != atoms_[i - 1].residue_name) {
      ++n;
    }
  }
  return n;
}

double System::total_mass() const {
  double mass = 0.0;
  for (const Atom& a : atoms_) mass += atomic_mass(a.element);
  return mass;
}

}  // namespace ada::chem
