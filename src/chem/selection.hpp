// Selection: an ordered set of atom indices stored as half-open runs.
//
// This is the data structure Algorithm 1 in the paper builds: the labeler
// maps each tag to a list of [begin, end) index ranges.  Runs keep the label
// file tiny (a protein with contiguous atom numbering is one run, not 18 000
// entries) and make subset extraction a handful of memcpy-sized copies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace ada::chem {

/// Half-open index range [begin, end).
struct Run {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;

  std::uint32_t size() const noexcept { return end - begin; }
  friend bool operator==(const Run&, const Run&) = default;
};

class Selection {
 public:
  Selection() = default;

  /// Build from arbitrary runs (they are normalized: sorted, merged).
  static Selection from_runs(std::vector<Run> runs);

  /// Build from arbitrary indices (deduplicated).
  static Selection from_indices(std::vector<std::uint32_t> indices);

  /// The full range [0, n).
  static Selection all(std::uint32_t n);

  /// Append one run; most callers append in increasing order (O(1) amortized),
  /// out-of-order appends trigger a renormalization.
  void add_run(Run run);

  void add_index(std::uint32_t index) { add_run({index, index + 1}); }

  /// Number of selected indices.
  std::uint64_t count() const noexcept;

  bool empty() const noexcept { return runs_.empty(); }
  bool contains(std::uint32_t index) const noexcept;

  const std::vector<Run>& runs() const noexcept { return runs_; }

  /// Set algebra.
  Selection unite(const Selection& other) const;
  Selection intersect(const Selection& other) const;
  /// Indices in [0, universe) that are NOT in this selection.
  Selection complement(std::uint32_t universe) const;

  /// Flat index list (for tests and brute-force comparisons).
  std::vector<std::uint32_t> to_indices() const;

  /// Compact text form "0-99,200-299" (inclusive ranges, PDB-style);
  /// empty selection renders as "".
  std::string to_string() const;
  static Result<Selection> parse(const std::string& text);

  friend bool operator==(const Selection&, const Selection&) = default;

 private:
  void normalize();

  std::vector<Run> runs_;  // invariant: sorted, non-empty, non-adjacent, disjoint
};

}  // namespace ada::chem
