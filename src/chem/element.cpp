#include "chem/element.hpp"

#include <cctype>

namespace ada::chem {

std::string_view symbol(Element e) noexcept {
  switch (e) {
    case Element::kUnknown: return "X";
    case Element::kHydrogen: return "H";
    case Element::kCarbon: return "C";
    case Element::kNitrogen: return "N";
    case Element::kOxygen: return "O";
    case Element::kSodium: return "Na";
    case Element::kMagnesium: return "Mg";
    case Element::kPhosphorus: return "P";
    case Element::kSulfur: return "S";
    case Element::kChlorine: return "Cl";
    case Element::kPotassium: return "K";
    case Element::kCalcium: return "Ca";
    case Element::kIron: return "Fe";
    case Element::kZinc: return "Zn";
  }
  return "X";
}

double atomic_mass(Element e) noexcept {
  switch (e) {
    case Element::kUnknown: return 0.0;
    case Element::kHydrogen: return 1.008;
    case Element::kCarbon: return 12.011;
    case Element::kNitrogen: return 14.007;
    case Element::kOxygen: return 15.999;
    case Element::kSodium: return 22.990;
    case Element::kMagnesium: return 24.305;
    case Element::kPhosphorus: return 30.974;
    case Element::kSulfur: return 32.06;
    case Element::kChlorine: return 35.45;
    case Element::kPotassium: return 39.098;
    case Element::kCalcium: return 40.078;
    case Element::kIron: return 55.845;
    case Element::kZinc: return 65.38;
  }
  return 0.0;
}

double vdw_radius_nm(Element e) noexcept {
  switch (e) {
    case Element::kUnknown: return 0.15;
    case Element::kHydrogen: return 0.120;
    case Element::kCarbon: return 0.170;
    case Element::kNitrogen: return 0.155;
    case Element::kOxygen: return 0.152;
    case Element::kSodium: return 0.227;
    case Element::kMagnesium: return 0.173;
    case Element::kPhosphorus: return 0.180;
    case Element::kSulfur: return 0.180;
    case Element::kChlorine: return 0.175;
    case Element::kPotassium: return 0.275;
    case Element::kCalcium: return 0.231;
    case Element::kIron: return 0.194;
    case Element::kZinc: return 0.139;
  }
  return 0.15;
}

Element element_from_atom_name(std::string_view atom_name, bool is_ion_residue) noexcept {
  // Strip leading digits and spaces ("1HB " -> "HB").
  std::size_t start = 0;
  while (start < atom_name.size() &&
         (std::isdigit(static_cast<unsigned char>(atom_name[start])) != 0 ||
          atom_name[start] == ' ')) {
    ++start;
  }
  if (start >= atom_name.size()) return Element::kUnknown;
  const char c0 = static_cast<char>(std::toupper(static_cast<unsigned char>(atom_name[start])));
  const char c1 = start + 1 < atom_name.size()
                      ? static_cast<char>(std::toupper(static_cast<unsigned char>(atom_name[start + 1])))
                      : '\0';

  // Two-letter matches first, but only in ion residues where "NA"/"CL"/...
  // are genuine sodium/chloride; in a protein residue "CA" is an alpha carbon.
  if (is_ion_residue) {
    if (c0 == 'N' && c1 == 'A') return Element::kSodium;
    if (c0 == 'C' && c1 == 'L') return Element::kChlorine;
    if (c0 == 'M' && c1 == 'G') return Element::kMagnesium;
    if (c0 == 'C' && c1 == 'A') return Element::kCalcium;
    if (c0 == 'Z' && c1 == 'N') return Element::kZinc;
    if (c0 == 'F' && c1 == 'E') return Element::kIron;
    if (c0 == 'K') return Element::kPotassium;
  }
  switch (c0) {
    case 'H': return Element::kHydrogen;
    case 'C': return Element::kCarbon;
    case 'N': return Element::kNitrogen;
    case 'O': return Element::kOxygen;
    case 'P': return Element::kPhosphorus;
    case 'S': return Element::kSulfur;
    default: return Element::kUnknown;
  }
}

}  // namespace ada::chem
