// Residue-name classification: the domain knowledge behind ADA's categorizer.
//
// ADA's data pre-processor reads atom records from a .pdb file and decides,
// per atom, which data subset the atom belongs to ("GetType" in the paper's
// Algorithm 1).  For the GPCR workload that is a protein / MISC split; this
// module also provides the finer categories (water, lipid, ion, ligand,
// nucleic acid) used by the fine-grained tag queries of Section 4.1.
#pragma once

#include <string_view>

namespace ada::chem {

enum class Category {
  kProtein = 0,
  kNucleic,
  kWater,
  kLipid,
  kIon,
  kLigand,
  kOther,
};

constexpr int kCategoryCount = 7;

/// Short human-readable name ("protein", "water", ...).
std::string_view category_name(Category c) noexcept;

/// The single-character tag ADA assigns ('p' protein, 'w' water, 'l' lipid,
/// 'i' ion, 'g' ligand, 'n' nucleic, 'o' other).
char category_tag(Category c) noexcept;

/// Inverse of category_tag; Category::kOther for unknown tags.
Category category_from_tag(char tag) noexcept;

/// Classify a residue by its (upper-case, trimmed) name.  Unknown residue
/// names classify as kLigand when `is_hetatm` (PDB HETATM record) and kOther
/// otherwise -- mirroring how VMD's own selection language treats HET groups.
Category classify_residue(std::string_view residue_name, bool is_hetatm = false) noexcept;

/// True for the 20 standard amino acids (plus common protonation variants).
bool is_amino_acid(std::string_view residue_name) noexcept;

/// True for water model residue names (HOH, SOL, WAT, TIP3, ...).
bool is_water(std::string_view residue_name) noexcept;

/// True for common membrane lipid residue names (POPC, DPPC, CHL1, ...).
bool is_lipid(std::string_view residue_name) noexcept;

/// True for monoatomic ion residue names (NA, CL, K, MG, CA2, ...).
bool is_ion(std::string_view residue_name) noexcept;

/// True for nucleic-acid residue names (DA, DG, ..., A, U, G, C).
bool is_nucleic(std::string_view residue_name) noexcept;

}  // namespace ada::chem
