// System: the topology half of a molecular dataset (what a .pdb file holds).
//
// A System owns the per-atom metadata -- names, residues, chains, elements,
// categories -- plus the periodic box and the reference coordinates from the
// structure file.  Trajectory frames (the .xtc side) are separate flat float
// arrays indexed consistently with the System's atom order.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "chem/classify.hpp"
#include "chem/element.hpp"
#include "chem/selection.hpp"
#include "common/result.hpp"

namespace ada::chem {

/// Periodic simulation box. XTC stores a full 3x3 matrix; orthorhombic boxes
/// have only the diagonal set.
struct Box {
  std::array<float, 9> matrix{};  // row-major [a, b, c] basis vectors, nm

  static Box orthorhombic(float x, float y, float z) {
    Box b;
    b.matrix = {x, 0, 0, 0, y, 0, 0, 0, z};
    return b;
  }

  float x() const noexcept { return matrix[0]; }
  float y() const noexcept { return matrix[4]; }
  float z() const noexcept { return matrix[8]; }

  friend bool operator==(const Box&, const Box&) = default;
};

/// One atom record (order matches file order; `index` is implicit).
struct Atom {
  std::uint32_t serial = 0;       // PDB serial number (1-based, may wrap)
  std::string name;               // atom name, e.g. "CA", "OW"
  std::string residue_name;       // e.g. "ALA", "SOL", "POPC"
  char chain_id = 'A';
  std::uint32_t residue_seq = 0;  // residue sequence number
  bool hetatm = false;            // true if from a HETATM record
  Element element = Element::kUnknown;

  friend bool operator==(const Atom&, const Atom&) = default;
};

class System {
 public:
  System() = default;

  /// Append an atom with reference position (x, y, z) in nanometers.
  /// The atom's category is derived from its residue name on insertion.
  void add_atom(Atom atom, float x, float y, float z);

  std::uint32_t atom_count() const noexcept { return static_cast<std::uint32_t>(atoms_.size()); }
  const Atom& atom(std::uint32_t i) const { return atoms_.at(i); }
  const std::vector<Atom>& atoms() const noexcept { return atoms_; }

  Category category(std::uint32_t i) const { return categories_.at(i); }

  /// Reference coordinates as xyz triplets (atom_count()*3 floats, nm).
  const std::vector<float>& reference_coords() const noexcept { return coords_; }

  const Box& box() const noexcept { return box_; }
  void set_box(const Box& box) { box_ = box; }

  /// All atoms belonging to `category`, as a run-list selection.
  Selection selection_for(Category category) const;

  /// Number of atoms in `category`.
  std::uint32_t count_category(Category category) const;

  /// Number of distinct residues (by (chain, residue_seq, residue_name) change).
  std::uint32_t residue_count() const;

  /// Total mass in daltons.
  double total_mass() const;

 private:
  std::vector<Atom> atoms_;
  std::vector<Category> categories_;
  std::vector<float> coords_;
  Box box_;
};

}  // namespace ada::chem
