#include "chem/classify.hpp"

#include <array>
#include <string>

#include "common/strings.hpp"

namespace ada::chem {

namespace {

bool name_in(std::string_view needle, std::initializer_list<std::string_view> names) {
  for (const auto& n : names) {
    if (needle == n) return true;
  }
  return false;
}

}  // namespace

std::string_view category_name(Category c) noexcept {
  switch (c) {
    case Category::kProtein: return "protein";
    case Category::kNucleic: return "nucleic";
    case Category::kWater: return "water";
    case Category::kLipid: return "lipid";
    case Category::kIon: return "ion";
    case Category::kLigand: return "ligand";
    case Category::kOther: return "other";
  }
  return "other";
}

char category_tag(Category c) noexcept {
  switch (c) {
    case Category::kProtein: return 'p';
    case Category::kNucleic: return 'n';
    case Category::kWater: return 'w';
    case Category::kLipid: return 'l';
    case Category::kIon: return 'i';
    case Category::kLigand: return 'g';
    case Category::kOther: return 'o';
  }
  return 'o';
}

Category category_from_tag(char tag) noexcept {
  switch (tag) {
    case 'p': return Category::kProtein;
    case 'n': return Category::kNucleic;
    case 'w': return Category::kWater;
    case 'l': return Category::kLipid;
    case 'i': return Category::kIon;
    case 'g': return Category::kLigand;
    default: return Category::kOther;
  }
}

bool is_amino_acid(std::string_view r) noexcept {
  return name_in(r, {"ALA", "ARG", "ASN", "ASP", "CYS", "GLN", "GLU", "GLY", "HIS", "ILE",
                     "LEU", "LYS", "MET", "PHE", "PRO", "SER", "THR", "TRP", "TYR", "VAL",
                     // Common protonation-state / terminal variants (CHARMM/AMBER).
                     "HSD", "HSE", "HSP", "HID", "HIE", "HIP", "CYX", "CYM", "ASH", "GLH",
                     "LYN", "ACE", "NME", "NMA"});
}

bool is_water(std::string_view r) noexcept {
  return name_in(r, {"HOH", "SOL", "WAT", "TIP", "TIP3", "TIP4", "TIP5", "SPC", "SPCE", "H2O"});
}

bool is_lipid(std::string_view r) noexcept {
  return name_in(r, {"POPC", "POPE", "POPS", "DPPC", "DMPC", "DOPC", "DOPE", "DLPC",
                     "CHL1", "CHOL", "PSM", "POPG", "DOPS", "SDPC"});
}

bool is_ion(std::string_view r) noexcept {
  return name_in(r, {"NA", "NA+", "SOD", "CL", "CL-", "CLA", "K", "K+", "POT", "MG",
                     "MG2", "CA", "CA2", "CAL", "ZN", "ZN2", "FE", "FE2", "FE3"});
}

bool is_nucleic(std::string_view r) noexcept {
  return name_in(r, {"DA", "DC", "DG", "DT", "DI", "A", "C", "G", "U", "I",
                     "ADE", "CYT", "GUA", "THY", "URA"});
}

Category classify_residue(std::string_view residue_name, bool is_hetatm) noexcept {
  // Compare against the canonical upper-case trimmed form.
  std::string upper = to_upper(trim(residue_name));
  const std::string_view r = upper;
  if (is_amino_acid(r)) return Category::kProtein;
  if (is_water(r)) return Category::kWater;
  if (is_lipid(r)) return Category::kLipid;
  if (is_ion(r)) return Category::kIon;
  if (is_nucleic(r)) return Category::kNucleic;
  return is_hetatm ? Category::kLigand : Category::kOther;
}

}  // namespace ada::chem
