// Mechanical HDD model: seeks, rotation, and zoned recording.
//
// The coarse DeviceSpec used by the platform pipelines says "126 MB/s MAX".
// This model explains that MAX: a drive's streaming rate depends on the
// zone under the head (outer tracks carry more sectors per revolution), and
// random access pays a distance-dependent seek plus rotational latency.
// It is used to validate the coarse spec (tests cross-check the effective
// rates) and by workloads that care about layout, e.g. the PLFS dropping
// placement study.
#pragma once

#include <cstdint>

namespace ada::storage {

/// Drive parameters, defaulted to a WD 1 TB 7200 rpm SATA drive
/// (paper Table 4's HDD).
struct HddParams {
  std::uint64_t capacity_bytes = 1'000'000'000'000ull;
  double rpm = 7200.0;
  double outer_bandwidth = 126e6;  // bytes/s at LBA 0 (outer rim)
  double inner_bandwidth = 62e6;   // bytes/s at the last LBA
  double track_to_track_seek = 0.7e-3;
  double full_stroke_seek = 16e-3;
  double controller_overhead = 0.1e-3;  // per-request fixed cost
};

class HddModel {
 public:
  explicit HddModel(HddParams params = {});

  const HddParams& params() const noexcept { return params_; }

  /// Streaming bandwidth at a byte offset (linear zone interpolation:
  /// conventional drives serpentine outer->inner as LBA grows).
  double bandwidth_at(std::uint64_t offset) const;

  /// Seek time between two byte offsets (square-root-of-distance law,
  /// bounded by track-to-track and full-stroke).
  double seek_time(std::uint64_t from, std::uint64_t to) const;

  /// Service one request at `offset` of `bytes`, advancing the head.
  /// Returns seconds: controller + seek + rotational latency (half a
  /// revolution on a discontiguous access, none when sequential) + transfer.
  double access(std::uint64_t offset, std::uint64_t bytes);

  /// Convenience: total time of a whole-file sequential read starting at
  /// `offset` (single seek, zoned transfer).
  double sequential_read_time(std::uint64_t offset, std::uint64_t bytes);

  std::uint64_t head_position() const noexcept { return head_; }
  std::uint64_t requests_served() const noexcept { return requests_; }
  double seeks_seconds() const noexcept { return seek_seconds_; }

 private:
  double rotation_seconds() const noexcept { return 60.0 / params_.rpm; }

  HddParams params_;
  std::uint64_t head_ = 0;   // byte offset under the head
  std::uint64_t requests_ = 0;
  double seek_seconds_ = 0;
};

}  // namespace ada::storage
