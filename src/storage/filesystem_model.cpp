#include "storage/filesystem_model.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"

namespace ada::storage {

FsParams FsParams::ext4() {
  FsParams p;
  p.name = "ext4";
  p.open_latency = 150e-6;
  p.per_extent_latency = 20e-6;
  p.extent_bytes = 128 * kMiB;  // max ext4 extent
  p.journal_write_factor = 1.05;  // ordered-mode metadata journaling
  return p;
}

FsParams FsParams::xfs() {
  FsParams p;
  p.name = "xfs";
  p.open_latency = 120e-6;
  p.per_extent_latency = 15e-6;
  p.extent_bytes = 512 * kMiB;  // XFS delayed allocation yields large extents
  p.journal_write_factor = 1.04;
  return p;
}

double LocalFileSystemModel::extent_count(double bytes) const {
  ADA_CHECK(bytes >= 0.0);
  return std::max(1.0, std::ceil(bytes / params_.extent_bytes));
}

double LocalFileSystemModel::read_file_time(double bytes) const {
  const double extents = extent_count(bytes);
  return params_.open_latency + extents * params_.per_extent_latency +
         device_.read_time(bytes, static_cast<std::uint64_t>(extents));
}

double LocalFileSystemModel::write_file_time(double bytes) const {
  const double extents = extent_count(bytes);
  return params_.open_latency + extents * params_.per_extent_latency +
         device_.write_time(bytes * params_.journal_write_factor,
                            static_cast<std::uint64_t>(extents));
}

}  // namespace ada::storage
