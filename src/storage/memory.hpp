// Compute-node memory accounting with OOM semantics.
//
// The paper's fat-node experiments (Section 4.3) hinge on exactly this:
// "both XFS and ADA (all) are killed by the system due to memory shortage
// when VMD is trying to render 1,876,800 frames".  The tracker charges every
// model-level allocation (compressed buffer, decompressed frames, render
// working set), tracks the peak, and reports OOM when usage would exceed
// usable DRAM (capacity minus an OS reserve).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/result.hpp"

namespace ada::storage {

class MemoryTracker {
 public:
  /// `capacity_bytes`: physical DRAM; `os_reserve_fraction`: slice the
  /// kernel, page cache floor and daemons keep (not available to VMD).
  explicit MemoryTracker(double capacity_bytes, double os_reserve_fraction = 0.03);

  /// Charge `bytes` under `label`.  Fails with kResourceExhausted -- and
  /// latches oom_occurred() -- if usage would exceed usable capacity.
  Status allocate(const std::string& label, double bytes);

  /// Release everything charged under `label` (no-op for unknown labels).
  void free(const std::string& label);

  /// Release all charges (end of a scenario).
  void reset();

  double capacity() const noexcept { return capacity_; }
  double usable() const noexcept { return usable_; }
  double in_use() const noexcept { return in_use_; }
  double peak() const noexcept { return peak_; }
  bool oom_occurred() const noexcept { return oom_; }

  /// Bytes charged under one label (0 if absent).
  double charged(const std::string& label) const;

 private:
  double capacity_;
  double usable_;
  double in_use_ = 0.0;
  double peak_ = 0.0;
  bool oom_ = false;
  std::map<std::string, double> charges_;
};

}  // namespace ada::storage
