// Flash SSD model: page-mapped FTL with garbage collection.
//
// The coarse DeviceSpec says "3000 MB/s read / 1000 MB/s write PEAK".  This
// model explains the asymmetry and its decay: reads parallelize cleanly
// across channels; writes program slower pages and, once free blocks run
// low, pay garbage-collection relocation whose cost grows with utilization
// (the write-amplification factor).  Used to validate the coarse spec and
// to study ADA's write path (ingest writes decompressed subsets: WAF tells
// us what that costs the SSD's lifetime).
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.hpp"

namespace ada::storage {

/// Flash geometry and timing, defaulted to a small PCIe drive
/// (scaled-capacity instances are used in tests; timings stay realistic).
struct SsdParams {
  std::uint64_t logical_capacity_bytes = 256ull << 20;  // exported capacity
  double over_provision = 0.07;                         // extra physical space
  std::uint32_t channels = 8;
  std::uint32_t page_bytes = 16 * 1024;
  std::uint32_t pages_per_block = 256;
  double page_read_s = 50e-6;
  double page_program_s = 400e-6;
  double block_erase_s = 3e-3;
  /// GC engages when free blocks drop below this fraction of all blocks.
  double gc_low_watermark = 0.03;
};

/// Lifetime/efficiency counters.
struct SsdStats {
  std::uint64_t host_pages_written = 0;
  std::uint64_t flash_pages_written = 0;  // host + GC relocations
  std::uint64_t gc_relocations = 0;
  std::uint64_t erases = 0;

  /// Write amplification factor (1.0 until GC starts relocating).
  double waf() const noexcept {
    return host_pages_written == 0
               ? 1.0
               : static_cast<double>(flash_pages_written) /
                     static_cast<double>(host_pages_written);
  }
};

class SsdModel {
 public:
  explicit SsdModel(SsdParams params = {});

  const SsdParams& params() const noexcept { return params_; }
  const SsdStats& stats() const noexcept { return stats_; }

  /// Write `bytes` at `offset` (page-aligned rounding up); returns simulated
  /// seconds including any garbage collection triggered.
  Result<double> write(std::uint64_t offset, std::uint64_t bytes);

  /// Read `bytes` at `offset`; unwritten pages read as zero at full speed.
  Result<double> read(std::uint64_t offset, std::uint64_t bytes) const;

  /// TRIM a logical range: invalidates mappings so GC skips the data.
  Status trim(std::uint64_t offset, std::uint64_t bytes);

  /// Fraction of logical pages currently mapped (utilization).
  double utilization() const noexcept;

  std::uint32_t free_blocks() const noexcept;

 private:
  static constexpr std::uint32_t kUnmapped = 0xffffffffu;

  std::uint64_t logical_pages() const noexcept;
  std::uint64_t physical_pages() const noexcept { return blocks_.size() * params_.pages_per_block; }

  Result<std::uint64_t> page_range(std::uint64_t offset, std::uint64_t bytes,
                                   std::uint64_t* first_page) const;
  double program_page(std::uint64_t logical_page);
  double collect_garbage();
  std::uint32_t pick_victim() const;
  void advance_active_block();

  struct Block {
    std::uint32_t valid = 0;   // live pages
    std::uint32_t written = 0; // next free page slot
    bool is_active = false;
  };

  SsdParams params_;
  std::vector<std::uint32_t> l2p_;       // logical page -> physical page (or kUnmapped)
  std::vector<std::uint32_t> p2l_;       // physical page -> logical page (or kUnmapped)
  std::vector<Block> blocks_;
  std::vector<std::uint32_t> free_list_; // erased blocks
  std::uint32_t active_block_ = 0;
  SsdStats stats_;
};

}  // namespace ada::storage
