#include "storage/energy.hpp"

#include "common/check.hpp"

namespace ada::storage {

double EnergyMeter::interval_watts(const ActivityInterval& interval) const {
  return spec_.baseline_w + spec_.cpu_active_w * interval.cpu_fraction +
         spec_.disk_active_w * interval.disk_fraction;
}

void EnergyMeter::record(const ActivityInterval& interval) {
  ADA_CHECK(interval.seconds >= 0.0);
  ADA_CHECK(interval.cpu_fraction >= 0.0 && interval.cpu_fraction <= 1.0 + 1e-9);
  ADA_CHECK(interval.disk_fraction >= 0.0 && interval.disk_fraction <= 1.0 + 1e-9);
  joules_ += interval_watts(interval) * interval.seconds * node_count_;
  seconds_ += interval.seconds;
  intervals_.push_back(interval);
}

double EnergyMeter::phase_joules(const std::string& phase) const {
  double total = 0.0;
  for (const ActivityInterval& interval : intervals_) {
    if (interval.phase == phase) total += interval_watts(interval) * interval.seconds * node_count_;
  }
  return total;
}

}  // namespace ada::storage
