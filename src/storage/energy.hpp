// Node power model + energy meter.
//
// Reproduces the paper's measurement setup in model form: a power meter on
// the server integrates consumption over the data-processing turnaround
// window (Fig. 10d).  Nodes draw a baseline (paper Table 4: "Average Power
// per Node 400W") plus activity-dependent increments while the CPU or disks
// work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ada::storage {

/// Per-node power draw by activity (watts).
struct PowerSpec {
  double baseline_w = 400.0;   // idle-with-OS draw, paper Table 4
  double cpu_active_w = 95.0;  // extra draw per fully busy CPU package
  double disk_active_w = 25.0; // extra draw while the disk subsystem streams

  static PowerSpec paper_node() { return PowerSpec{}; }
};

/// Activity level of one interval, for the meter.
struct ActivityInterval {
  std::string phase;        // "retrieve", "decompress", "render", ...
  double seconds = 0.0;
  double cpu_fraction = 0;  // 0..1 of one package busy
  double disk_fraction = 0; // 0..1 of the disk subsystem busy
};

/// Integrates node power over recorded intervals.
class EnergyMeter {
 public:
  explicit EnergyMeter(PowerSpec spec, unsigned node_count = 1)
      : spec_(spec), node_count_(node_count) {}

  /// Record an interval; energy accrues for all metered nodes.
  void record(const ActivityInterval& interval);

  double joules() const noexcept { return joules_; }
  double kilojoules() const noexcept { return joules_ / 1e3; }
  double metered_seconds() const noexcept { return seconds_; }
  const std::vector<ActivityInterval>& intervals() const noexcept { return intervals_; }

  /// Energy attributable to one phase name (joules).
  double phase_joules(const std::string& phase) const;

 private:
  double interval_watts(const ActivityInterval& interval) const;

  PowerSpec spec_;
  unsigned node_count_;
  double joules_ = 0.0;
  double seconds_ = 0.0;
  std::vector<ActivityInterval> intervals_;
};

}  // namespace ada::storage
