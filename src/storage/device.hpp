// Block-device performance models, with presets for the paper's hardware.
//
// The evaluation platforms (paper Tables 4 and 5) use three device classes:
//   - WD 1 TB SATA HDD: 126 MB/s max streaming, mechanical seek;
//   - Plextor 256 GB PCIe SSD: 3000 MB/s peak read, 1000 MB/s peak write;
//   - a RAID-50 array of 10 WD HDDs on the fat node.
// A device answers "how long does transferring N bytes take", accounting for
// access latency and (for RAID) stripe parallelism.
#pragma once

#include <cstdint>
#include <string>

namespace ada::storage {

/// Performance envelope of one block device (or array).
struct DeviceSpec {
  std::string name;
  double read_bandwidth = 0.0;    // bytes/s, streaming
  double write_bandwidth = 0.0;   // bytes/s, streaming
  double access_latency = 0.0;    // seconds per request (seek + controller)

  /// WD 1 TB SATA HDD (paper Table 4: 126 MB/s MAX).
  static DeviceSpec wd_hdd_1tb();
  /// Plextor 256 GB PCIe SSD (paper Table 4: 3000 / 1000 MB/s peak).
  static DeviceSpec plextor_ssd_256gb();
  /// Intel NVMe SSD of the SSD server (Section 4.1; same class as Plextor).
  static DeviceSpec nvme_ssd_256gb();
  /// RAID-50 of `disks` WD HDDs (paper Table 5): two RAID-5 legs striped;
  /// one parity disk per leg does not contribute streaming bandwidth.
  static DeviceSpec raid50_wd_hdd(unsigned disks = 10);
};

/// Stateless timing model over a DeviceSpec.  The "storage.device.read" /
/// "storage.device.write" fault-injection sites (common/faults.hpp) can add
/// latency spikes to the modeled time.
class BlockDevice {
 public:
  explicit BlockDevice(DeviceSpec spec) : spec_(std::move(spec)) {}

  const DeviceSpec& spec() const noexcept { return spec_; }

  /// Seconds to read `bytes` in `requests` sequential requests.
  double read_time(double bytes, std::uint64_t requests = 1) const;

  /// Seconds to write `bytes` in `requests` sequential requests.
  double write_time(double bytes, std::uint64_t requests = 1) const;

 private:
  DeviceSpec spec_;
};

}  // namespace ada::storage
