#include "storage/device.hpp"

#include "common/check.hpp"
#include "common/faults.hpp"
#include "common/units.hpp"

namespace ada::storage {

namespace {
// Latency-spike injection: a kDelay outcome at these sites adds its
// delay_seconds to the modeled service time (a degraded spindle, a
// controller hiccup).  Other outcome kinds are meaningless for a pure
// timing model and are ignored here; arm the pvfs.* sites for errors.
double injected_delay(const char* site) {
  const fault::Outcome outcome = fault::hit(site);
  return outcome.kind == fault::Outcome::Kind::kDelay ? outcome.delay_seconds : 0.0;
}
}  // namespace

DeviceSpec DeviceSpec::wd_hdd_1tb() {
  return DeviceSpec{"WD-1TB-HDD", mb_per_s(126), mb_per_s(126), 8.5e-3};
}

DeviceSpec DeviceSpec::plextor_ssd_256gb() {
  return DeviceSpec{"Plextor-256GB-SSD", mb_per_s(3000), mb_per_s(1000), 60e-6};
}

DeviceSpec DeviceSpec::nvme_ssd_256gb() {
  return DeviceSpec{"NVMe-256GB-SSD", mb_per_s(3000), mb_per_s(1000), 60e-6};
}

DeviceSpec DeviceSpec::raid50_wd_hdd(unsigned disks) {
  ADA_CHECK(disks >= 6 && disks % 2 == 0);
  const DeviceSpec hdd = wd_hdd_1tb();
  // RAID-50: two RAID-5 legs of disks/2 drives; each leg streams with
  // (leg_size - 1) data spindles; reads stream from all data spindles,
  // writes pay the parity-update penalty (~25% on streaming writes).
  const unsigned data_spindles = disks - 2;
  DeviceSpec spec;
  spec.name = "RAID50-" + std::to_string(disks) + "xWD-HDD";
  spec.read_bandwidth = hdd.read_bandwidth * data_spindles;
  spec.write_bandwidth = hdd.write_bandwidth * data_spindles * 0.75;
  spec.access_latency = hdd.access_latency;  // seeks are not parallelized
  return spec;
}

double BlockDevice::read_time(double bytes, std::uint64_t requests) const {
  ADA_CHECK(bytes >= 0.0);
  return static_cast<double>(requests) * spec_.access_latency + bytes / spec_.read_bandwidth +
         injected_delay("storage.device.read");
}

double BlockDevice::write_time(double bytes, std::uint64_t requests) const {
  ADA_CHECK(bytes >= 0.0);
  return static_cast<double>(requests) * spec_.access_latency + bytes / spec_.write_bandwidth +
         injected_delay("storage.device.write");
}

}  // namespace ada::storage
