#include "storage/hdd_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ada::storage {

HddModel::HddModel(HddParams params) : params_(params) {
  ADA_CHECK(params_.capacity_bytes > 0);
  ADA_CHECK(params_.outer_bandwidth >= params_.inner_bandwidth);
  ADA_CHECK(params_.inner_bandwidth > 0);
}

double HddModel::bandwidth_at(std::uint64_t offset) const {
  const double fraction = std::min(1.0, static_cast<double>(offset) /
                                            static_cast<double>(params_.capacity_bytes));
  return params_.outer_bandwidth - fraction * (params_.outer_bandwidth - params_.inner_bandwidth);
}

double HddModel::seek_time(std::uint64_t from, std::uint64_t to) const {
  if (from == to) return 0.0;
  const double distance = static_cast<double>(from > to ? from - to : to - from) /
                          static_cast<double>(params_.capacity_bytes);
  // Square-root seek curve through (0+, track_to_track) and (1, full_stroke).
  const double t = params_.track_to_track_seek +
                   (params_.full_stroke_seek - params_.track_to_track_seek) * std::sqrt(distance);
  return std::min(t, params_.full_stroke_seek);
}

double HddModel::access(std::uint64_t offset, std::uint64_t bytes) {
  ADA_CHECK(offset + bytes <= params_.capacity_bytes);
  ++requests_;
  double time = params_.controller_overhead;
  if (offset != head_) {
    const double seek = seek_time(head_, offset);
    seek_seconds_ += seek;
    // Average rotational latency: half a revolution after a seek.
    time += seek + rotation_seconds() / 2;
  }
  // Transfer across zones: integrate in zone-sized steps (linear profile, so
  // the midpoint rate over the extent is exact).
  const double rate = (bandwidth_at(offset) + bandwidth_at(offset + bytes)) / 2;
  time += static_cast<double>(bytes) / rate;
  head_ = offset + bytes;
  return time;
}

double HddModel::sequential_read_time(std::uint64_t offset, std::uint64_t bytes) {
  return access(offset, bytes);
}

}  // namespace ada::storage
