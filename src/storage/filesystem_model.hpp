// Local file-system performance models (ext4 / XFS flavoured).
//
// The SSD server runs ext4 (Section 4.1) and the fat node runs XFS
// (Section 4.3).  At the granularity the paper measures -- whole-file
// streaming of multi-hundred-MB trajectories -- the file systems differ in
// metadata/allocation overhead, not in steady-state bandwidth, so the model
// is: per-file metadata cost + per-extent access + device streaming time.
#pragma once

#include <string>

#include "storage/device.hpp"

namespace ada::storage {

/// Tunables distinguishing file-system flavours.
struct FsParams {
  std::string name;
  double open_latency = 0.0;      // path walk + inode fetch, seconds
  double per_extent_latency = 0;  // extent map traversal per extent
  double extent_bytes = 0.0;      // allocation granularity -> extents per file
  double journal_write_factor = 1.0;  // write amplification from journaling

  static FsParams ext4();
  static FsParams xfs();
};

/// Timing model of one mounted local file system over one device.
class LocalFileSystemModel {
 public:
  LocalFileSystemModel(FsParams params, DeviceSpec device)
      : params_(std::move(params)), device_(std::move(device)) {}

  const FsParams& params() const noexcept { return params_; }
  const BlockDevice& device() const noexcept { return device_; }

  /// Seconds to open + sequentially read a file of `bytes`.
  double read_file_time(double bytes) const;

  /// Seconds to create + sequentially write a file of `bytes`.
  double write_file_time(double bytes) const;

 private:
  double extent_count(double bytes) const;

  FsParams params_;
  BlockDevice device_;
};

}  // namespace ada::storage
