#include "storage/memory.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/units.hpp"

namespace ada::storage {

MemoryTracker::MemoryTracker(double capacity_bytes, double os_reserve_fraction)
    : capacity_(capacity_bytes), usable_(capacity_bytes * (1.0 - os_reserve_fraction)) {
  ADA_CHECK(capacity_bytes > 0.0);
  ADA_CHECK(os_reserve_fraction >= 0.0 && os_reserve_fraction < 1.0);
}

Status MemoryTracker::allocate(const std::string& label, double bytes) {
  ADA_CHECK(bytes >= 0.0);
  if (in_use_ + bytes > usable_) {
    oom_ = true;
    return resource_exhausted("OOM: " + label + " needs " + format_bytes(bytes) + ", " +
                              format_bytes(usable_ - in_use_) + " of " + format_bytes(usable_) +
                              " usable remain");
  }
  charges_[label] += bytes;
  in_use_ += bytes;
  peak_ = std::max(peak_, in_use_);
  return Status::ok();
}

void MemoryTracker::free(const std::string& label) {
  const auto it = charges_.find(label);
  if (it == charges_.end()) return;
  in_use_ -= it->second;
  ADA_CHECK(in_use_ >= -1e-6);
  in_use_ = std::max(0.0, in_use_);
  charges_.erase(it);
}

void MemoryTracker::reset() {
  charges_.clear();
  in_use_ = 0.0;
}

double MemoryTracker::charged(const std::string& label) const {
  const auto it = charges_.find(label);
  return it == charges_.end() ? 0.0 : it->second;
}

}  // namespace ada::storage
