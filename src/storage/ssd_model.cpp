#include "storage/ssd_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ada::storage {

SsdModel::SsdModel(SsdParams params) : params_(params) {
  ADA_CHECK(params_.page_bytes > 0 && params_.pages_per_block > 0 && params_.channels > 0);
  ADA_CHECK(params_.over_provision > 0.0);

  const std::uint64_t logical = logical_pages();
  const auto physical =
      static_cast<std::uint64_t>(std::ceil(static_cast<double>(logical) *
                                           (1.0 + params_.over_provision)));
  const std::uint64_t block_count =
      (physical + params_.pages_per_block - 1) / params_.pages_per_block + 1;
  ADA_CHECK(block_count >= 4);

  l2p_.assign(logical, kUnmapped);
  blocks_.assign(block_count, Block{});
  p2l_.assign(blocks_.size() * params_.pages_per_block, kUnmapped);
  free_list_.reserve(block_count);
  // All blocks start erased; the last one becomes the first active block.
  for (std::uint32_t b = 0; b < block_count - 1; ++b) free_list_.push_back(b);
  active_block_ = static_cast<std::uint32_t>(block_count - 1);
  blocks_[active_block_].is_active = true;
}

std::uint64_t SsdModel::logical_pages() const noexcept {
  return (params_.logical_capacity_bytes + params_.page_bytes - 1) / params_.page_bytes;
}

double SsdModel::utilization() const noexcept {
  std::uint64_t mapped = 0;
  for (const std::uint32_t p : l2p_) {
    if (p != kUnmapped) ++mapped;
  }
  return static_cast<double>(mapped) / static_cast<double>(l2p_.size());
}

std::uint32_t SsdModel::free_blocks() const noexcept {
  return static_cast<std::uint32_t>(free_list_.size());
}

Result<std::uint64_t> SsdModel::page_range(std::uint64_t offset, std::uint64_t bytes,
                                           std::uint64_t* first_page) const {
  if (bytes == 0) return invalid_argument("zero-length request");
  if (offset + bytes > params_.logical_capacity_bytes) {
    return out_of_range("request beyond logical capacity");
  }
  *first_page = offset / params_.page_bytes;
  const std::uint64_t last = (offset + bytes - 1) / params_.page_bytes;
  return last - *first_page + 1;
}

void SsdModel::advance_active_block() {
  ADA_CHECK(!free_list_.empty());
  blocks_[active_block_].is_active = false;
  active_block_ = free_list_.back();
  free_list_.pop_back();
  Block& block = blocks_[active_block_];
  ADA_CHECK(block.written == 0 && block.valid == 0);
  block.is_active = true;
}

double SsdModel::program_page(std::uint64_t logical_page) {
  double time = 0.0;
  if (blocks_[active_block_].written == params_.pages_per_block) {
    advance_active_block();
  }
  // Invalidate the previous version.
  const std::uint32_t old_physical = l2p_[logical_page];
  if (old_physical != kUnmapped) {
    const std::uint32_t old_block = old_physical / params_.pages_per_block;
    ADA_CHECK(blocks_[old_block].valid > 0);
    --blocks_[old_block].valid;
    p2l_[old_physical] = kUnmapped;
  }
  const std::uint32_t physical =
      active_block_ * params_.pages_per_block + blocks_[active_block_].written;
  ++blocks_[active_block_].written;
  ++blocks_[active_block_].valid;
  l2p_[logical_page] = physical;
  p2l_[physical] = static_cast<std::uint32_t>(logical_page);
  ++stats_.flash_pages_written;
  time += params_.page_program_s;
  return time;
}

std::uint32_t SsdModel::pick_victim() const {
  // Greedy: the fully-written block with the fewest valid pages.
  std::uint32_t best = kUnmapped;
  std::uint32_t best_valid = params_.pages_per_block + 1;
  for (std::uint32_t b = 0; b < blocks_.size(); ++b) {
    const Block& block = blocks_[b];
    if (block.is_active || block.written != params_.pages_per_block) continue;
    if (block.valid < best_valid) {
      best_valid = block.valid;
      best = b;
    }
  }
  return best;
}

double SsdModel::collect_garbage() {
  double time = 0.0;
  const auto low_watermark = std::max<std::size_t>(
      2, static_cast<std::size_t>(static_cast<double>(blocks_.size()) * params_.gc_low_watermark));
  while (free_list_.size() < low_watermark) {
    const std::uint32_t victim = pick_victim();
    ADA_CHECK(victim != kUnmapped);
    Block& block = blocks_[victim];
    // Relocate live pages into the active block.
    for (std::uint32_t slot = 0; slot < params_.pages_per_block; ++slot) {
      const std::uint32_t physical = victim * params_.pages_per_block + slot;
      const std::uint32_t logical = p2l_[physical];
      if (logical == kUnmapped) continue;
      time += params_.page_read_s;
      time += program_page(logical);
      ++stats_.gc_relocations;
    }
    ADA_CHECK(block.valid == 0);
    block.written = 0;
    time += params_.block_erase_s;
    ++stats_.erases;
    free_list_.push_back(victim);
  }
  return time;
}

Result<double> SsdModel::write(std::uint64_t offset, std::uint64_t bytes) {
  std::uint64_t first = 0;
  ADA_ASSIGN_OR_RETURN(const std::uint64_t pages, page_range(offset, bytes, &first));
  double time = 0.0;
  for (std::uint64_t p = 0; p < pages; ++p) {
    time += program_page(first + p);
    ++stats_.host_pages_written;
    const auto low_watermark = std::max<std::size_t>(
        2,
        static_cast<std::size_t>(static_cast<double>(blocks_.size()) * params_.gc_low_watermark));
    if (free_list_.size() < low_watermark) time += collect_garbage();
  }
  // Channel parallelism: programs pipeline across channels.
  return time / params_.channels;
}

Result<double> SsdModel::read(std::uint64_t offset, std::uint64_t bytes) const {
  std::uint64_t first = 0;
  ADA_ASSIGN_OR_RETURN(const std::uint64_t pages, page_range(offset, bytes, &first));
  // Reads pipeline across channels regardless of mapping.
  return params_.page_read_s * static_cast<double>(pages) / params_.channels;
}

Status SsdModel::trim(std::uint64_t offset, std::uint64_t bytes) {
  std::uint64_t first = 0;
  ADA_ASSIGN_OR_RETURN(const std::uint64_t pages, page_range(offset, bytes, &first));
  for (std::uint64_t p = 0; p < pages; ++p) {
    const std::uint32_t physical = l2p_[first + p];
    if (physical == kUnmapped) continue;
    const std::uint32_t block = physical / params_.pages_per_block;
    ADA_CHECK(blocks_[block].valid > 0);
    --blocks_[block].valid;
    p2l_[physical] = kUnmapped;
    l2p_[first + p] = kUnmapped;
  }
  return Status::ok();
}

}  // namespace ada::storage
