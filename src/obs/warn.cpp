#include "obs/warn.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace ada::obs {

namespace {

struct Bucket {
  std::mutex mutex;
  double per_second = 5.0;
  double burst = 10.0;
  double tokens = 10.0;
  std::chrono::steady_clock::time_point last_refill = std::chrono::steady_clock::now();

  // Refill-then-spend; returns false when the bucket is dry.
  bool take() {
    std::lock_guard lock(mutex);
    const auto now = std::chrono::steady_clock::now();
    const double elapsed = std::chrono::duration<double>(now - last_refill).count();
    last_refill = now;
    tokens = std::min(burst, tokens + elapsed * per_second);
    if (tokens < 1.0) return false;
    tokens -= 1.0;
    return true;
  }
};

Bucket& bucket() {
  static Bucket* instance = new Bucket();  // outlives static teardown
  return *instance;
}

std::atomic<std::uint64_t> g_emitted{0};
std::atomic<std::uint64_t> g_suppressed{0};

}  // namespace

void warn(WarnSeverity severity, const char* category, const std::string& message) {
  if (!bucket().take()) {
    g_suppressed.fetch_add(1, std::memory_order_relaxed);
    ADA_OBS_COUNT("warn.suppressed", 1);
    return;
  }
  g_emitted.fetch_add(1, std::memory_order_relaxed);
  ADA_OBS_COUNT("warn.emitted", 1);
  if (severity == WarnSeverity::kError) {
    ADA_LOG(kError) << "[" << category << "] " << message;
  } else {
    ADA_LOG(kWarn) << "[" << category << "] " << message;
  }
}

void set_warn_rate(double per_second, double burst) {
  Bucket& b = bucket();
  std::lock_guard lock(b.mutex);
  b.per_second = std::max(0.0, per_second);
  b.burst = std::max(1.0, burst);
  b.tokens = std::min(b.tokens, b.burst);
}

std::uint64_t warnings_emitted() noexcept {
  return g_emitted.load(std::memory_order_relaxed);
}

std::uint64_t warnings_suppressed() noexcept {
  return g_suppressed.load(std::memory_order_relaxed);
}

void reset_warn_state() {
  Bucket& b = bucket();
  std::lock_guard lock(b.mutex);
  b.tokens = b.burst;
  b.last_refill = std::chrono::steady_clock::now();
  g_emitted.store(0, std::memory_order_relaxed);
  g_suppressed.store(0, std::memory_order_relaxed);
}

}  // namespace ada::obs
