// RAII timing spans that nest into a per-thread trace tree.
//
// A ScopedTimer opens a span on construction and closes it on destruction;
// spans opened while another is live on the same thread become its children,
// so the aggregate forms a calls/time tree ("ingest" -> "preprocess" ->
// "decode") mirroring the paper's Fig. 8 flame graph, but collected live on
// the functional plane instead of post-hoc.
//
// Each thread owns its tree, so recording never contends across threads;
// span_stats() merges every thread's tree by path into one aggregate.  Node
// counters are atomics and child lists are mutated under a per-tree mutex,
// so a merge taken concurrently with recording is race-free (it sees a
// consistent-per-node, possibly slightly stale view).
//
// Span names must be string literals (or otherwise outlive the process):
// nodes keep the pointer, not a copy, to keep the open/close path cheap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ada::obs {

namespace detail {
struct SpanNode;
}

/// Times a region of code as a span named `name` under the thread's
/// currently open span.  No-op (one relaxed load) while obs is disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name) noexcept;
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  detail::SpanNode* node_ = nullptr;  // null when disabled at entry
  std::uint64_t start_ns_ = 0;
};

/// One aggregated span, merged across threads, in depth-first order.
struct SpanStat {
  std::string path;  // "ingest/preprocess/decode"
  std::string name;  // "decode"
  int depth = 0;
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;  // total_ns minus the children's total_ns
};

/// Merge every thread's trace tree into one path-keyed aggregate,
/// depth-first.  Safe to call while other threads are still recording.
std::vector<SpanStat> span_stats();

/// Zero all recorded spans (tree shape and open spans are kept).  Call
/// between measured runs, not while measured work is in flight.
void reset_spans();

/// One collapsed stack per thread with an open span right now, in
/// flamegraph "folded" orientation: "ingest;preprocess;decode".  Threads
/// idle at their tree root contribute nothing.  Safe to call from the
/// profiler ticker while other threads record: the open-span pointer is an
/// acquire-load of an atomic the owning thread publishes with release, and
/// span nodes are owned by the (never-shrinking) tree so the parent chain
/// stays valid.  Order is the thread-registration order, so a single-thread
/// caller sees a deterministic result.
std::vector<std::string> sample_active_stacks();

}  // namespace ada::obs
