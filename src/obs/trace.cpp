#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "obs/metrics.hpp"

namespace ada::obs {

namespace detail {

struct SpanNode {
  SpanNode(const char* span_name, SpanNode* span_parent)
      : name(span_name), parent(span_parent) {}

  const char* name;
  SpanNode* parent;
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::vector<std::unique_ptr<SpanNode>> children;  // guarded by the tree mutex
};

}  // namespace detail

namespace {

using detail::SpanNode;

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// One trace tree per recording thread.  `current` is written only by the
// owning thread (release) and read by the profiler sampler (acquire), so a
// sampled node's fields -- set before publication -- are visible; `mutex`
// guards every node's child list so a concurrent span_stats() walk sees
// consistent vectors.
struct ThreadTrace {
  std::mutex mutex;
  SpanNode root{"", nullptr};
  std::atomic<SpanNode*> current{&root};
};

struct TraceRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadTrace>> trees;
};

TraceRegistry& trace_registry() {
  static TraceRegistry* registry = new TraceRegistry();  // outlives TLS teardown
  return *registry;
}

ThreadTrace& local_trace() {
  // The registry owns the tree so it survives thread exit: short-lived
  // ingest workers leave their spans behind for the final merge.
  thread_local ThreadTrace* tls = [] {
    auto tree = std::make_unique<ThreadTrace>();
    ThreadTrace* raw = tree.get();
    TraceRegistry& registry = trace_registry();
    std::lock_guard lock(registry.mutex);
    registry.trees.push_back(std::move(tree));
    return raw;
  }();
  return *tls;
}

struct MergedSpan {
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::map<std::string, MergedSpan> children;
};

void absorb(MergedSpan& merged, const SpanNode& node) {
  merged.calls += node.calls.load(std::memory_order_relaxed);
  merged.total_ns += node.total_ns.load(std::memory_order_relaxed);
  for (const auto& child : node.children) absorb(merged.children[child->name], *child);
}

void emit(const std::string& prefix, int depth, const std::string& name,
          const MergedSpan& span, std::vector<SpanStat>& out) {
  const std::string path = prefix.empty() ? name : prefix + "/" + name;
  std::uint64_t children_ns = 0;
  for (const auto& [child_name, child] : span.children) children_ns += child.total_ns;
  SpanStat stat;
  stat.path = path;
  stat.name = name;
  stat.depth = depth;
  stat.calls = span.calls;
  stat.total_ns = span.total_ns;
  stat.self_ns = span.total_ns > children_ns ? span.total_ns - children_ns : 0;
  out.push_back(std::move(stat));
  for (const auto& [child_name, child] : span.children) {
    emit(path, depth + 1, child_name, child, out);
  }
}

void zero(SpanNode& node) {
  node.calls.store(0, std::memory_order_relaxed);
  node.total_ns.store(0, std::memory_order_relaxed);
  for (auto& child : node.children) zero(*child);
}

}  // namespace

ScopedTimer::ScopedTimer(const char* name) noexcept {
  if (!enabled()) return;
  ThreadTrace& trace = local_trace();
  SpanNode* parent = trace.current.load(std::memory_order_relaxed);
  SpanNode* node = nullptr;
  {
    std::lock_guard lock(trace.mutex);
    for (const auto& child : parent->children) {
      if (child->name == name || std::strcmp(child->name, name) == 0) {
        node = child.get();
        break;
      }
    }
    if (node == nullptr) {
      parent->children.push_back(std::make_unique<SpanNode>(name, parent));
      node = parent->children.back().get();
    }
  }
  trace.current.store(node, std::memory_order_release);
  node_ = node;
  start_ns_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (node_ == nullptr) return;
  const std::uint64_t elapsed = now_ns() - start_ns_;
  node_->calls.fetch_add(1, std::memory_order_relaxed);
  node_->total_ns.fetch_add(elapsed, std::memory_order_relaxed);
  local_trace().current.store(node_->parent, std::memory_order_release);
}

std::vector<SpanStat> span_stats() {
  MergedSpan merged_root;
  TraceRegistry& registry = trace_registry();
  {
    std::lock_guard registry_lock(registry.mutex);
    for (const auto& tree : registry.trees) {
      std::lock_guard tree_lock(tree->mutex);
      absorb(merged_root, tree->root);
    }
  }
  std::vector<SpanStat> out;
  for (const auto& [name, span] : merged_root.children) emit("", 0, name, span, out);
  return out;
}

void reset_spans() {
  TraceRegistry& registry = trace_registry();
  std::lock_guard registry_lock(registry.mutex);
  for (const auto& tree : registry.trees) {
    std::lock_guard tree_lock(tree->mutex);
    zero(tree->root);
  }
}

std::vector<std::string> sample_active_stacks() {
  std::vector<std::string> out;
  TraceRegistry& registry = trace_registry();
  std::lock_guard registry_lock(registry.mutex);
  for (const auto& tree : registry.trees) {
    const SpanNode* open = tree->current.load(std::memory_order_acquire);
    if (open == &tree->root) continue;  // thread idle, nothing open
    // Walk leaf -> root, then reverse into the folded root-first order.
    std::vector<const char*> frames;
    for (const SpanNode* node = open; node != nullptr && node->parent != nullptr;
         node = node->parent) {
      frames.push_back(node->name);
    }
    std::string stack;
    for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
      if (!stack.empty()) stack += ';';
      stack += *it;
    }
    out.push_back(std::move(stack));
  }
  return out;
}

}  // namespace ada::obs
