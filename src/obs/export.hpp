// Exporters: one obs snapshot -> stable JSON document or aligned text table.
//
// The JSON shape is versioned and documented in docs/observability.md; keys
// are emitted in sorted order so goldens and downstream scrapers are stable
// across runs and platforms.  The table form reuses common/table.hpp so the
// tools and the bench harnesses report through the same renderer as the
// paper tables.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ada::obs {

/// Point-in-time copy of everything the registry and trace trees hold.
struct Snapshot {
  struct HistogramStat {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    // Raw log-scale bucket counts (Histogram bucket shape): the OpenMetrics
    // exposition needs cumulative buckets, not just precomputed quantiles.
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStat> histograms;
  std::vector<SpanStat> spans;  // depth-first over the merged trace tree

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty() && spans.empty();
  }
};

/// Capture the global registry plus every thread's trace tree.
Snapshot capture();

/// Zero every instrument and span in the process (shape is kept; references
/// stay valid).  The bracket for before/after differential runs.
void reset_all();

/// Stable JSON document ({"version":1,"counters":{...},...}); keys sorted.
std::string to_json(const Snapshot& snapshot);

/// OpenMetrics / Prometheus text exposition of the snapshot, ready for a
/// scrape endpoint (future ada-serve) or `--metrics=openmetrics`:
///   * names are sanitized `ada_<name with . -> _>`; counters gain the
///     `_total` suffix, each family gets `# HELP` / `# TYPE` lines;
///   * histograms expose cumulative `_bucket{le="..."}` series on the
///     power-of-two bucket edges (plus `+Inf`), `_sum` and `_count`;
///   * spans export as three labelled families --
///     `ada_span_calls_total{path="..."}`, `ada_span_time_ns_total`,
///     `ada_span_self_ns_total`;
///   * output ends with `# EOF` and is byte-stable for goldens.
std::string to_openmetrics(const Snapshot& snapshot);

/// Aligned text tables (counters / histograms / span tree) for terminals.
void print_tables(const Snapshot& snapshot, std::ostream& os);

/// JSON string-escape / shortest-stable-number helpers shared by the JSON,
/// OpenMetrics and telemetry (obs/telemetry.hpp) writers.
std::string json_escape(const std::string& raw);
std::string json_number(double value);

}  // namespace ada::obs
