#include "obs/trace_export.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <span>

#include "common/binary_io.hpp"

namespace ada::obs {

namespace {

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Chrome timestamps are microseconds; three decimals keep the recorder's
/// nanosecond resolution without floating-point noise in goldens.
std::string ts_us_field(std::uint64_t ts_ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", ts_ns / 1000,
                static_cast<unsigned>(ts_ns % 1000));
  return buf;
}

char phase_char(RawEvent::Phase phase) {
  switch (phase) {
    case RawEvent::Phase::kBegin: return 'B';
    case RawEvent::Phase::kEnd: return 'E';
    case RawEvent::Phase::kInstant: return 'i';
    case RawEvent::Phase::kCounter: return 'C';
  }
  return 'i';
}

void append_metadata(std::string& out, std::uint32_t pid, std::uint64_t tid, bool has_tid,
                     const char* meta_name, const std::string& display) {
  out += "{\"name\":\"";
  out += meta_name;
  out += "\",\"ph\":\"M\",\"pid\":" + std::to_string(pid);
  if (has_tid) out += ",\"tid\":" + std::to_string(tid);
  out += ",\"args\":{\"name\":\"" + json_escape(display) + "\"}},\n";
}

// ---- minimal JSON reader (only what Chrome traces need) --------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  Result<JsonValue> parse() {
    JsonValue value;
    ADA_RETURN_IF_ERROR(parse_value(value));
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after JSON document");
    return value;
  }

 private:
  Status parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      }
      case 't':
      case 'f': return parse_literal(out, c == 't');
      case 'n':
        if (!consume("null")) return fail("bad literal");
        out.kind = JsonValue::Kind::kNull;
        return Status::ok();
      default: return parse_number(out);
    }
  }

  Status parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::ok();
    }
    while (true) {
      skip_ws();
      std::string key;
      ADA_RETURN_IF_ERROR(parse_string(key));
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':' in object");
      ++pos_;
      JsonValue value;
      ADA_RETURN_IF_ERROR(parse_value(value));
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::ok();
      }
      return fail("expected ',' or '}' in object");
    }
  }

  Status parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::ok();
    }
    while (true) {
      JsonValue value;
      ADA_RETURN_IF_ERROR(parse_value(value));
      out.array.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::ok();
      }
      return fail("expected ',' or ']' in array");
    }
  }

  Status parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected string");
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::ok();
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // Traces only carry control characters escaped this way; map the
          // BMP code point to UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  Status parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected number");
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return Status::ok();
  }

  Status parse_literal(JsonValue& out, bool value) {
    if (!consume(value ? "true" : "false")) return fail("bad literal");
    out.kind = JsonValue::Kind::kBool;
    out.boolean = value;
    return Status::ok();
  }

  bool consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  Error fail(const char* what) const {
    return corrupt_data(std::string("trace JSON: ") + what + " at byte " + std::to_string(pos_));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::uint64_t as_u64(const JsonValue* value) {
  if (value == nullptr || value->kind != JsonValue::Kind::kNumber) return 0;
  return value->number <= 0.0 ? 0 : static_cast<std::uint64_t>(value->number);
}

}  // namespace

std::string to_chrome_json(const std::vector<RawEvent>& events,
                           const std::vector<std::pair<std::uint32_t, std::string>>& lanes) {
  // Stable sort: per-ring record order already has B before E at equal
  // timestamps, so ties keep that order.
  std::vector<RawEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(), [](const RawEvent& a, const RawEvent& b) {
    const std::uint32_t pid_a = a.lane == 0 ? kFunctionalPid : kSimPid;
    const std::uint32_t pid_b = b.lane == 0 ? kFunctionalPid : kSimPid;
    const std::uint64_t tid_a = a.lane == 0 ? a.thread : a.lane;
    const std::uint64_t tid_b = b.lane == 0 ? b.thread : b.lane;
    if (pid_a != pid_b) return pid_a < pid_b;
    if (tid_a != tid_b) return tid_a < tid_b;
    return a.ts_ns < b.ts_ns;
  });

  std::string out = "{\"traceEvents\":[\n";
  append_metadata(out, kFunctionalPid, 0, false, "process_name", "functional (wall clock)");
  std::set<std::uint32_t> threads;
  bool any_sim = false;
  for (const RawEvent& event : sorted) {
    if (event.lane == 0) threads.insert(event.thread);
    else any_sim = true;
  }
  for (const std::uint32_t thread : threads) {
    append_metadata(out, kFunctionalPid, thread, true, "thread_name",
                    "thread " + std::to_string(thread));
  }
  if (any_sim || !lanes.empty()) {
    append_metadata(out, kSimPid, 0, false, "process_name", "simulated (sim time)");
  }
  for (const auto& [lane, label] : lanes) {
    append_metadata(out, kSimPid, lane, true, "thread_name", label);
  }

  bool first = true;
  for (const RawEvent& event : sorted) {
    if (!first) out += ",\n";
    first = false;
    const std::uint32_t pid = event.lane == 0 ? kFunctionalPid : kSimPid;
    const std::uint64_t tid = event.lane == 0 ? event.thread : event.lane;
    const char ph = phase_char(event.phase);
    out += "{\"name\":\"" + json_escape(event.name) + "\",\"ph\":\"";
    out += ph;
    out += "\",\"ts\":" + ts_us_field(event.ts_ns) + ",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(tid);
    if (ph == 'i') out += ",\"s\":\"t\"";
    out += ",\"args\":{";
    if (ph == 'C') {
      // Counter tracks plot every numeric arg; keep them to the value.
      out += "\"value\":" + std::to_string(event.value);
    } else {
      out += "\"trace\":" + std::to_string(event.trace_id) +
             ",\"span\":" + std::to_string(event.span_id) +
             ",\"parent\":" + std::to_string(event.parent_span) + ",\"tag\":\"" +
             json_escape(event.tag) + "\"";
      if (event.value != 0) out += ",\"value\":" + std::to_string(event.value);
    }
    out += "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

std::string capture_chrome_json() { return to_chrome_json(snapshot_events(), lane_labels()); }

Status write_chrome_json(const std::string& path) {
  const std::string json = capture_chrome_json();
  return write_file(path, std::span<const std::uint8_t>(
                              reinterpret_cast<const std::uint8_t*>(json.data()), json.size()));
}

Result<std::vector<ExportEvent>> parse_chrome_json(
    std::string_view json, std::vector<std::pair<std::uint64_t, std::string>>* lane_names) {
  JsonReader reader(json);
  ADA_ASSIGN_OR_RETURN(const JsonValue root, reader.parse());
  const JsonValue* array = &root;
  if (root.kind == JsonValue::Kind::kObject) {
    array = root.find("traceEvents");
    if (array == nullptr) return corrupt_data("trace JSON: missing traceEvents");
  }
  if (array->kind != JsonValue::Kind::kArray) {
    return corrupt_data("trace JSON: traceEvents is not an array");
  }

  std::vector<ExportEvent> out;
  out.reserve(array->array.size());
  for (const JsonValue& row : array->array) {
    if (row.kind != JsonValue::Kind::kObject) continue;
    const JsonValue* ph = row.find("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString || ph->string.empty()) continue;
    const char phase = ph->string[0];
    const JsonValue* name = row.find("name");
    const JsonValue* args = row.find("args");
    const std::uint32_t pid = static_cast<std::uint32_t>(as_u64(row.find("pid")));
    const std::uint64_t tid = as_u64(row.find("tid"));
    if (phase == 'M') {
      if (lane_names != nullptr && pid == kSimPid && name != nullptr &&
          name->string == "thread_name" && args != nullptr) {
        const JsonValue* label = args->find("name");
        if (label != nullptr && label->kind == JsonValue::Kind::kString) {
          lane_names->emplace_back(tid, label->string);
        }
      }
      continue;
    }
    if (phase != 'B' && phase != 'E' && phase != 'i' && phase != 'C') continue;
    ExportEvent event;
    event.name = name != nullptr ? name->string : "";
    event.ph = phase;
    const JsonValue* ts = row.find("ts");
    event.ts_us = ts != nullptr && ts->kind == JsonValue::Kind::kNumber ? ts->number : 0.0;
    event.pid = pid;
    event.tid = tid;
    if (args != nullptr && args->kind == JsonValue::Kind::kObject) {
      event.trace_id = as_u64(args->find("trace"));
      event.span_id = as_u64(args->find("span"));
      event.parent_span = as_u64(args->find("parent"));
      event.value = as_u64(args->find("value"));
      const JsonValue* tag = args->find("tag");
      if (tag != nullptr && tag->kind == JsonValue::Kind::kString) event.tag = tag->string;
    }
    out.push_back(std::move(event));
  }
  return out;
}

}  // namespace ada::obs
