#include "obs/trace_export.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <span>

#include "common/binary_io.hpp"
#include "common/json.hpp"

namespace ada::obs {

namespace {

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Chrome timestamps are microseconds; three decimals keep the recorder's
/// nanosecond resolution without floating-point noise in goldens.
std::string ts_us_field(std::uint64_t ts_ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", ts_ns / 1000,
                static_cast<unsigned>(ts_ns % 1000));
  return buf;
}

char phase_char(RawEvent::Phase phase) {
  switch (phase) {
    case RawEvent::Phase::kBegin: return 'B';
    case RawEvent::Phase::kEnd: return 'E';
    case RawEvent::Phase::kInstant: return 'i';
    case RawEvent::Phase::kCounter: return 'C';
  }
  return 'i';
}

void append_metadata(std::string& out, std::uint32_t pid, std::uint64_t tid, bool has_tid,
                     const char* meta_name, const std::string& display) {
  out += "{\"name\":\"";
  out += meta_name;
  out += "\",\"ph\":\"M\",\"pid\":" + std::to_string(pid);
  if (has_tid) out += ",\"tid\":" + std::to_string(tid);
  out += ",\"args\":{\"name\":\"" + json_escape(display) + "\"}},\n";
}

// The JSON reader itself lives in common/json.hpp (it started here and was
// promoted once ada-stats and the telemetry tests needed it too); this file
// keeps only the trace-shaped accessors.
using JsonValue = json::Value;

std::uint64_t as_u64(const JsonValue* value) {
  if (value == nullptr || value->kind != JsonValue::Kind::kNumber) return 0;
  return value->number <= 0.0 ? 0 : static_cast<std::uint64_t>(value->number);
}

}  // namespace

std::string to_chrome_json(const std::vector<RawEvent>& events,
                           const std::vector<std::pair<std::uint32_t, std::string>>& lanes) {
  // Stable sort: per-ring record order already has B before E at equal
  // timestamps, so ties keep that order.
  std::vector<RawEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(), [](const RawEvent& a, const RawEvent& b) {
    const std::uint32_t pid_a = a.lane == 0 ? kFunctionalPid : kSimPid;
    const std::uint32_t pid_b = b.lane == 0 ? kFunctionalPid : kSimPid;
    const std::uint64_t tid_a = a.lane == 0 ? a.thread : a.lane;
    const std::uint64_t tid_b = b.lane == 0 ? b.thread : b.lane;
    if (pid_a != pid_b) return pid_a < pid_b;
    if (tid_a != tid_b) return tid_a < tid_b;
    return a.ts_ns < b.ts_ns;
  });

  std::string out = "{\"traceEvents\":[\n";
  append_metadata(out, kFunctionalPid, 0, false, "process_name", "functional (wall clock)");
  std::set<std::uint32_t> threads;
  bool any_sim = false;
  for (const RawEvent& event : sorted) {
    if (event.lane == 0) threads.insert(event.thread);
    else any_sim = true;
  }
  for (const std::uint32_t thread : threads) {
    append_metadata(out, kFunctionalPid, thread, true, "thread_name",
                    "thread " + std::to_string(thread));
  }
  if (any_sim || !lanes.empty()) {
    append_metadata(out, kSimPid, 0, false, "process_name", "simulated (sim time)");
  }
  for (const auto& [lane, label] : lanes) {
    append_metadata(out, kSimPid, lane, true, "thread_name", label);
  }

  bool first = true;
  for (const RawEvent& event : sorted) {
    if (!first) out += ",\n";
    first = false;
    const std::uint32_t pid = event.lane == 0 ? kFunctionalPid : kSimPid;
    const std::uint64_t tid = event.lane == 0 ? event.thread : event.lane;
    const char ph = phase_char(event.phase);
    out += "{\"name\":\"" + json_escape(event.name) + "\",\"ph\":\"";
    out += ph;
    out += "\",\"ts\":" + ts_us_field(event.ts_ns) + ",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(tid);
    if (ph == 'i') out += ",\"s\":\"t\"";
    out += ",\"args\":{";
    if (ph == 'C') {
      // Counter tracks plot every numeric arg; keep them to the value.
      out += "\"value\":" + std::to_string(event.value);
    } else {
      out += "\"trace\":" + std::to_string(event.trace_id) +
             ",\"span\":" + std::to_string(event.span_id) +
             ",\"parent\":" + std::to_string(event.parent_span) + ",\"tag\":\"" +
             json_escape(event.tag) + "\"";
      if (event.value != 0) out += ",\"value\":" + std::to_string(event.value);
    }
    out += "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

std::string capture_chrome_json() { return to_chrome_json(snapshot_events(), lane_labels()); }

Status write_chrome_json(const std::string& path) {
  const std::string json = capture_chrome_json();
  return write_file(path, std::span<const std::uint8_t>(
                              reinterpret_cast<const std::uint8_t*>(json.data()), json.size()));
}

Result<std::vector<ExportEvent>> parse_chrome_json(
    std::string_view json, std::vector<std::pair<std::uint64_t, std::string>>* lane_names) {
  ADA_ASSIGN_OR_RETURN(const JsonValue root, json::parse(json));
  const JsonValue* array = &root;
  if (root.kind == JsonValue::Kind::kObject) {
    array = root.find("traceEvents");
    if (array == nullptr) return corrupt_data("trace JSON: missing traceEvents");
  }
  if (array->kind != JsonValue::Kind::kArray) {
    return corrupt_data("trace JSON: traceEvents is not an array");
  }

  std::vector<ExportEvent> out;
  out.reserve(array->array.size());
  for (const JsonValue& row : array->array) {
    if (row.kind != JsonValue::Kind::kObject) continue;
    const JsonValue* ph = row.find("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString || ph->string.empty()) continue;
    const char phase = ph->string[0];
    const JsonValue* name = row.find("name");
    const JsonValue* args = row.find("args");
    const std::uint32_t pid = static_cast<std::uint32_t>(as_u64(row.find("pid")));
    const std::uint64_t tid = as_u64(row.find("tid"));
    if (phase == 'M') {
      if (lane_names != nullptr && pid == kSimPid && name != nullptr &&
          name->string == "thread_name" && args != nullptr) {
        const JsonValue* label = args->find("name");
        if (label != nullptr && label->kind == JsonValue::Kind::kString) {
          lane_names->emplace_back(tid, label->string);
        }
      }
      continue;
    }
    if (phase != 'B' && phase != 'E' && phase != 'i' && phase != 'C') continue;
    ExportEvent event;
    event.name = name != nullptr ? name->string : "";
    event.ph = phase;
    const JsonValue* ts = row.find("ts");
    event.ts_us = ts != nullptr && ts->kind == JsonValue::Kind::kNumber ? ts->number : 0.0;
    event.pid = pid;
    event.tid = tid;
    if (args != nullptr && args->kind == JsonValue::Kind::kObject) {
      event.trace_id = as_u64(args->find("trace"));
      event.span_id = as_u64(args->find("span"));
      event.parent_span = as_u64(args->find("parent"));
      event.value = as_u64(args->find("value"));
      const JsonValue* tag = args->find("tag");
      if (tag != nullptr && tag->kind == JsonValue::Kind::kString) event.tag = tag->string;
    }
    out.push_back(std::move(event));
  }
  return out;
}

}  // namespace ada::obs
