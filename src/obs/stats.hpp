// Telemetry/bench statistics core shared by the ada-stats CLI and tests:
// flattening parsed JSON into dotted-path numeric maps, rendering telemetry
// JSONL into rate/percentile summaries, and the perf-regression diff that
// check-perf gates on.
//
// Keeping the logic in the library (not the tool's main) means the negative
// gate test and the unit tests exercise exactly the code path the CI gate
// runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"

namespace ada::obs {

/// Flatten a parsed JSON document into "a.b.c" -> number entries.  Array
/// elements index as "a.3"; booleans count as 0/1; strings and nulls are
/// skipped.
std::map<std::string, double> flatten_numbers(const json::Value& value);

/// Perf-regression comparison between two flattened metric maps
/// (typically two BENCH_*.json files).  Only the keys listed in `higher` /
/// `lower` are judged -- environment metadata (meta.*) never trips the gate
/// unless explicitly listed.
struct DiffSpec {
  double budget = 0.10;             // allowed fractional regression per key
  std::vector<std::string> higher;  // keys where higher is better
  std::vector<std::string> lower;   // keys where lower is better
};

struct DiffRow {
  std::string key;
  double baseline = 0.0;
  double candidate = 0.0;
  double change = 0.0;  // (candidate - baseline) / baseline, signed; 0 when
                        // baseline is 0 and candidate matches it
  bool higher_is_better = true;
  bool missing = false;  // absent from baseline or candidate => violation
  bool violation = false;
};

struct DiffReport {
  std::vector<DiffRow> rows;  // spec order: higher keys, then lower keys
  std::size_t violations = 0;
};

/// Judge `candidate` against `baseline` under `spec`.  A listed key missing
/// from either side is a violation (a silently vanished metric must fail
/// the gate, not pass it).  A zero baseline only violates when the
/// regression direction is unambiguous (candidate moved the wrong way from
/// zero).
DiffReport diff_metrics(const std::map<std::string, double>& baseline,
                        const std::map<std::string, double>& candidate,
                        const DiffSpec& spec);

/// One telemetry JSONL stream reduced per clock: per-counter totals and
/// mean rates over the observed span, per-histogram final quantiles.
struct TelemetrySummary {
  struct CounterRow {
    std::string name;
    std::uint64_t total = 0;         // cumulative total at the last sample
    std::uint64_t delta_sum = 0;     // sum of per-sample deltas (reconciles
                                     // with `total` by construction)
    double rate_per_s = 0.0;         // delta_sum over the observed span
  };
  struct HistogramRow {
    std::string name;
    std::uint64_t count = 0;
    double p50 = 0.0, p90 = 0.0, p99 = 0.0;  // cumulative, from last sample
  };
  std::string clock;  // "wall" or "sim"
  std::uint64_t samples = 0;
  double first_t_ms = 0.0;
  double last_t_ms = 0.0;
  std::vector<CounterRow> counters;      // sorted by name
  std::vector<HistogramRow> histograms;  // sorted by name
};

/// Parse telemetry JSONL text (obs/telemetry.hpp schema 1) and reduce it to
/// one summary per clock, sorted by clock name.  Unknown schemas and
/// malformed lines are errors, not skips.
Result<std::vector<TelemetrySummary>> summarize_telemetry(const std::string& jsonl);

}  // namespace ada::obs
