#include "obs/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ada::obs {

namespace {

void flatten_into(const json::Value& value, const std::string& prefix,
                  std::map<std::string, double>& out) {
  switch (value.kind) {
    case json::Value::Kind::kNumber:
      out[prefix] = value.number;
      break;
    case json::Value::Kind::kBool:
      out[prefix] = value.boolean ? 1.0 : 0.0;
      break;
    case json::Value::Kind::kObject:
      for (const auto& [key, member] : value.object) {
        flatten_into(member, prefix.empty() ? key : prefix + "." + key, out);
      }
      break;
    case json::Value::Kind::kArray:
      for (std::size_t i = 0; i < value.array.size(); ++i) {
        flatten_into(value.array[i],
                     prefix.empty() ? std::to_string(i) : prefix + "." + std::to_string(i),
                     out);
      }
      break;
    default:
      break;  // strings and nulls carry no number
  }
}

void judge(const std::map<std::string, double>& baseline,
           const std::map<std::string, double>& candidate, const DiffSpec& spec,
           const std::string& key, bool higher_is_better, DiffReport& report) {
  DiffRow row;
  row.key = key;
  row.higher_is_better = higher_is_better;
  const auto base_it = baseline.find(key);
  const auto cand_it = candidate.find(key);
  if (base_it == baseline.end() || cand_it == candidate.end()) {
    row.missing = true;
    row.violation = true;
  } else {
    row.baseline = base_it->second;
    row.candidate = cand_it->second;
    if (row.baseline != 0.0) {
      row.change = (row.candidate - row.baseline) / row.baseline;
      row.violation = higher_is_better ? row.change < -spec.budget
                                       : row.change > spec.budget;
    } else {
      // No meaningful ratio from a zero baseline: only a move in the wrong
      // direction is an unambiguous regression.
      row.change = 0.0;
      row.violation = higher_is_better ? row.candidate < 0.0 : row.candidate > 0.0;
    }
  }
  if (row.violation) ++report.violations;
  report.rows.push_back(std::move(row));
}

}  // namespace

std::map<std::string, double> flatten_numbers(const json::Value& value) {
  std::map<std::string, double> out;
  flatten_into(value, "", out);
  return out;
}

DiffReport diff_metrics(const std::map<std::string, double>& baseline,
                        const std::map<std::string, double>& candidate,
                        const DiffSpec& spec) {
  DiffReport report;
  for (const std::string& key : spec.higher) {
    judge(baseline, candidate, spec, key, /*higher_is_better=*/true, report);
  }
  for (const std::string& key : spec.lower) {
    judge(baseline, candidate, spec, key, /*higher_is_better=*/false, report);
  }
  return report;
}

Result<std::vector<TelemetrySummary>> summarize_telemetry(const std::string& jsonl) {
  struct Accumulator {
    std::uint64_t samples = 0;
    double first_t_ms = 0.0;
    double last_t_ms = 0.0;
    std::map<std::string, TelemetrySummary::CounterRow> counters;
    std::map<std::string, TelemetrySummary::HistogramRow> histograms;
  };
  std::map<std::string, Accumulator> clocks;

  std::size_t line_no = 0;
  std::size_t begin = 0;
  while (begin < jsonl.size()) {
    std::size_t end = jsonl.find('\n', begin);
    if (end == std::string::npos) end = jsonl.size();
    const std::string_view line(jsonl.data() + begin, end - begin);
    begin = end + 1;
    if (line.empty()) continue;
    ++line_no;

    ADA_ASSIGN_OR_RETURN(const json::Value root, json::parse(line));
    const json::Value* schema = root.find("schema");
    if (schema == nullptr || !schema->is_number() || schema->number != 1.0) {
      return corrupt_data("telemetry line " + std::to_string(line_no) +
                          ": missing or unsupported schema");
    }
    const json::Value* clock = root.find("clock");
    const json::Value* t_ms = root.find("t_ms");
    if (clock == nullptr || !clock->is_string() || t_ms == nullptr || !t_ms->is_number()) {
      return corrupt_data("telemetry line " + std::to_string(line_no) +
                          ": missing clock or t_ms");
    }
    Accumulator& acc = clocks[clock->string];
    if (acc.samples == 0) acc.first_t_ms = t_ms->number;
    acc.last_t_ms = t_ms->number;
    ++acc.samples;

    if (const json::Value* counters = root.find("counters");
        counters != nullptr && counters->is_object()) {
      for (const auto& [name, entry] : counters->object) {
        const json::Value* total = entry.find("total");
        const json::Value* delta = entry.find("delta");
        if (total == nullptr || delta == nullptr) {
          return corrupt_data("telemetry line " + std::to_string(line_no) +
                              ": counter " + name + " missing total/delta");
        }
        TelemetrySummary::CounterRow& row = acc.counters[name];
        row.name = name;
        row.total = static_cast<std::uint64_t>(total->number);
        row.delta_sum += static_cast<std::uint64_t>(delta->number);
      }
    }
    if (const json::Value* histograms = root.find("histograms");
        histograms != nullptr && histograms->is_object()) {
      for (const auto& [name, entry] : histograms->object) {
        TelemetrySummary::HistogramRow& row = acc.histograms[name];
        row.name = name;
        if (const json::Value* count = entry.find("count"); count != nullptr) {
          row.count = static_cast<std::uint64_t>(count->number);
        }
        if (const json::Value* p = entry.find("p50"); p != nullptr) row.p50 = p->number;
        if (const json::Value* p = entry.find("p90"); p != nullptr) row.p90 = p->number;
        if (const json::Value* p = entry.find("p99"); p != nullptr) row.p99 = p->number;
      }
    }
  }

  std::vector<TelemetrySummary> out;
  for (auto& [clock, acc] : clocks) {
    TelemetrySummary summary;
    summary.clock = clock;
    summary.samples = acc.samples;
    summary.first_t_ms = acc.first_t_ms;
    summary.last_t_ms = acc.last_t_ms;
    const double span_s = (acc.last_t_ms - acc.first_t_ms) * 1e-3;
    for (auto& [name, row] : acc.counters) {
      row.rate_per_s = span_s > 0.0 ? static_cast<double>(row.delta_sum) / span_s : 0.0;
      summary.counters.push_back(std::move(row));
    }
    for (auto& [name, row] : acc.histograms) {
      summary.histograms.push_back(std::move(row));
    }
    out.push_back(std::move(summary));
  }
  return out;
}

}  // namespace ada::obs
