// Continuous telemetry: a background sampler that snapshots the metrics
// registry on a fixed cadence and appends a JSONL time series.
//
// Each line is one sample: for every counter the cumulative total plus the
// delta since the previous sample on the same clock, for every histogram the
// cumulative quantiles plus *windowed* quantiles computed by diffing the raw
// log-scale buckets between samples (percentile_from_buckets).  Samples are
// attributed to a clock -- "wall" for the ticker thread, "sim" for samples
// driven by the discrete-event simulator's virtual time -- and each clock
// keeps its own delta baseline, so summing a clock's deltas always
// reconciles with the final cumulative totals (the e2e telemetry test
// enforces this against `--metrics=json`).
//
// Line shape (schema 1, keys sorted; see docs/observability.md):
//   {"schema":1,"seq":3,"clock":"wall","t_ms":750.0,
//    "counters":{"ingest.frames":{"total":900,"delta":300}},
//    "gauges":{"cache.bytes":1024},
//    "histograms":{"query.latency_ns":{"count":90,"delta":30,
//      "p50":...,"p90":...,"p99":...,"win_p50":...,"win_p90":...,"win_p99":...}}}
//
// With telemetry off every hook reduces to one relaxed atomic load; the
// differential e2e test proves the data path is byte-identical either way.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.hpp"
#include "obs/metrics.hpp"

namespace ada::obs {

struct TelemetryOptions {
  std::string path;                 // JSONL output file, appended line-by-line
  std::uint64_t interval_ms = 250;  // cadence for both wall and sim clocks
};

/// Owns the output file, the per-clock delta baselines, and (after start())
/// the wall-clock ticker thread.  sample_now() is the single sampling
/// primitive; the ticker, the sim hook and deterministic tests all go
/// through it, so test output matches production output byte-for-byte.
class MetricsSampler {
 public:
  /// Opens (truncates) the output file.  No thread is started yet.
  static Result<std::unique_ptr<MetricsSampler>> open(TelemetryOptions options);
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Launch the wall-clock ticker thread (requires interval_ms > 0).
  Status start();

  /// Stop the ticker (if running) and append one final wall sample so the
  /// last line always reflects the end state.  Idempotent.
  void stop();

  /// Take one sample attributed to `clock` ("wall" or "sim") at time t_ms
  /// on that clock.  Thread-safe; lines are appended atomically under the
  /// sampler mutex and flushed so readers see complete lines.
  void sample_now(const char* clock, double t_ms);

  /// Sim-time hook: emits a "sim" sample whenever virtual time has advanced
  /// by at least interval_ms since the last sim sample.
  void sim_tick(double sim_seconds);

  std::uint64_t lines_written() const;

 private:
  explicit MetricsSampler(TelemetryOptions options, std::FILE* file);

  struct HistBaseline {
    std::uint64_t count = 0;
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
  };
  struct Baseline {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, HistBaseline> histograms;
  };

  void ticker_main();

  TelemetryOptions options_;
  std::FILE* file_ = nullptr;
  std::chrono::steady_clock::time_point start_time_ = std::chrono::steady_clock::now();

  mutable std::mutex mutex_;  // guards file writes, baselines, seq
  std::map<std::string, Baseline> baselines_;  // keyed by clock name
  std::uint64_t seq_ = 0;
  std::uint64_t lines_ = 0;
  double next_sim_emit_ms_ = 0.0;
  bool sim_seen_ = false;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::thread ticker_;
};

/// Process-global telemetry plane behind `--telemetry=FILE[,interval_ms]`.
/// start_telemetry parses the spec, opens the sampler and starts the wall
/// ticker; stop_telemetry appends the final sample and closes the file.
Status start_telemetry(const std::string& spec);
void stop_telemetry();

/// One relaxed load; true between successful start_telemetry and
/// stop_telemetry.  The gate for the sim hook's fast path.
bool telemetry_active() noexcept;

/// Called by the discrete-event simulator as virtual time advances; a no-op
/// (one relaxed load) unless telemetry is active.
void telemetry_sim_tick(double sim_seconds);

}  // namespace ada::obs
