#include "obs/telemetry.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>

#include "obs/export.hpp"

namespace ada::obs {

Result<std::unique_ptr<MetricsSampler>> MetricsSampler::open(TelemetryOptions options) {
  if (options.path.empty()) {
    return invalid_argument("telemetry: output path is empty");
  }
  std::FILE* file = std::fopen(options.path.c_str(), "wb");
  if (file == nullptr) {
    return io_error("telemetry: cannot open " + options.path);
  }
  return std::unique_ptr<MetricsSampler>(new MetricsSampler(std::move(options), file));
}

MetricsSampler::MetricsSampler(TelemetryOptions options, std::FILE* file)
    : options_(std::move(options)), file_(file) {}

MetricsSampler::~MetricsSampler() {
  stop();
  if (file_ != nullptr) std::fclose(file_);
}

Status MetricsSampler::start() {
  if (options_.interval_ms == 0) {
    return invalid_argument("telemetry: interval_ms must be > 0 to start the ticker");
  }
  if (ticker_.joinable()) {
    return failed_precondition("telemetry: ticker already running");
  }
  stop_requested_ = false;
  ticker_ = std::thread(&MetricsSampler::ticker_main, this);
  return Status::ok();
}

void MetricsSampler::stop() {
  {
    std::lock_guard lock(stop_mutex_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
  // Final wall sample: the last line always reflects the end state, so a
  // reader summing deltas reconciles with the final cumulative dump.
  const auto elapsed = std::chrono::steady_clock::now() - start_time_;
  sample_now("wall", std::chrono::duration<double, std::milli>(elapsed).count());
  std::fflush(file_);
}

void MetricsSampler::ticker_main() {
  const auto interval = std::chrono::milliseconds(options_.interval_ms);
  std::unique_lock lock(stop_mutex_);
  while (!stop_requested_) {
    if (stop_cv_.wait_for(lock, interval, [this] { return stop_requested_; })) break;
    lock.unlock();
    const auto elapsed = std::chrono::steady_clock::now() - start_time_;
    sample_now("wall", std::chrono::duration<double, std::milli>(elapsed).count());
    lock.lock();
  }
}

void MetricsSampler::sample_now(const char* clock, double t_ms) {
  const Snapshot snapshot = capture();
  std::lock_guard lock(mutex_);
  Baseline& baseline = baselines_[clock];

  std::string line = "{\"schema\":1,\"seq\":" + std::to_string(seq_++) +
                     ",\"clock\":\"" + std::string(clock) + "\",\"t_ms\":" +
                     json_number(t_ms) + ",\"counters\":{";
  bool first = true;
  for (const auto& [name, total] : snapshot.counters) {
    const std::uint64_t before = baseline.counters[name];
    if (!first) line += ',';
    first = false;
    line += '"' + json_escape(name) + "\":{\"total\":" + std::to_string(total) +
            ",\"delta\":" + std::to_string(total - before) + '}';
    baseline.counters[name] = total;
  }
  line += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) line += ',';
    first = false;
    line += '"' + json_escape(name) + "\":" + json_number(value);
  }
  line += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    HistBaseline& hist_before = baseline.histograms[name];
    // The window is the bucket-wise difference since the previous sample on
    // this clock; its quantiles use the shared interpolation with the
    // cumulative max as the (only available) upper clamp.
    std::array<std::uint64_t, Histogram::kBuckets> window{};
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      window[b] = h.buckets[b] - hist_before.buckets[b];
    }
    const std::uint64_t window_count = h.count - hist_before.count;
    if (!first) line += ',';
    first = false;
    line += '"' + json_escape(name) + "\":{\"count\":" + std::to_string(h.count) +
            ",\"delta\":" + std::to_string(window_count) +
            ",\"p50\":" + json_number(h.p50) + ",\"p90\":" + json_number(h.p90) +
            ",\"p99\":" + json_number(h.p99) +
            ",\"win_p50\":" + json_number(percentile_from_buckets(window, window_count, 0.50, h.max)) +
            ",\"win_p90\":" + json_number(percentile_from_buckets(window, window_count, 0.90, h.max)) +
            ",\"win_p99\":" + json_number(percentile_from_buckets(window, window_count, 0.99, h.max)) + '}';
    hist_before.count = h.count;
    hist_before.buckets = h.buckets;
  }
  line += "}}\n";

  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);  // whole lines on disk: readers never see a torn record
  ++lines_;
}

void MetricsSampler::sim_tick(double sim_seconds) {
  const double sim_ms = sim_seconds * 1e3;
  {
    std::lock_guard lock(mutex_);
    if (sim_seen_ && sim_ms < next_sim_emit_ms_) return;
    sim_seen_ = true;
    next_sim_emit_ms_ = sim_ms + static_cast<double>(options_.interval_ms);
  }
  sample_now("sim", sim_ms);
}

std::uint64_t MetricsSampler::lines_written() const {
  std::lock_guard lock(mutex_);
  return lines_;
}

namespace {

std::atomic<bool> g_telemetry_active{false};
std::mutex g_telemetry_mutex;
std::unique_ptr<MetricsSampler>& global_sampler() {
  static std::unique_ptr<MetricsSampler>* sampler =
      new std::unique_ptr<MetricsSampler>();  // outlives static teardown races
  return *sampler;
}

}  // namespace

Status start_telemetry(const std::string& spec) {
  TelemetryOptions options;
  const std::size_t comma = spec.find(',');
  options.path = spec.substr(0, comma);
  if (comma != std::string::npos) {
    const std::string interval = spec.substr(comma + 1);
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(interval.c_str(), &end, 10);
    if (interval.empty() || end == nullptr || *end != '\0' || parsed == 0) {
      return invalid_argument("telemetry: bad interval '" + interval +
                              "' in spec '" + spec + "' (want FILE[,interval_ms])");
    }
    options.interval_ms = parsed;
  }
  std::lock_guard lock(g_telemetry_mutex);
  if (global_sampler() != nullptr) {
    return failed_precondition("telemetry: already started");
  }
  ADA_ASSIGN_OR_RETURN(std::unique_ptr<MetricsSampler> sampler,
                       MetricsSampler::open(std::move(options)));
  ADA_RETURN_IF_ERROR(sampler->start());
  global_sampler() = std::move(sampler);
  g_telemetry_active.store(true, std::memory_order_relaxed);
  return Status::ok();
}

void stop_telemetry() {
  std::lock_guard lock(g_telemetry_mutex);
  if (global_sampler() == nullptr) return;
  g_telemetry_active.store(false, std::memory_order_relaxed);
  global_sampler()->stop();
  global_sampler().reset();
}

bool telemetry_active() noexcept {
  return g_telemetry_active.load(std::memory_order_relaxed);
}

void telemetry_sim_tick(double sim_seconds) {
  if (!telemetry_active()) return;  // the one-relaxed-load fast path
  std::lock_guard lock(g_telemetry_mutex);
  if (global_sampler() == nullptr) return;
  global_sampler()->sim_tick(sim_seconds);
}

}  // namespace ada::obs
