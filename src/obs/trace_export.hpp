// Chrome trace-event JSON export/import for the event recorder.
//
// Output loads directly in Perfetto or chrome://tracing.  Two "processes"
// render the two planes: pid 1 is the functional plane (wall clock, one tid
// per recording thread), pid 2 is the simulated plane (sim time, one tid
// per registered lane).  Field ordering inside every JSON object is fixed so
// golden tests can compare strings byte-for-byte.
//
// The parser accepts any Chrome trace emitted by this exporter (and the
// common subset produced by other tools): a top-level object with a
// "traceEvents" array, or a bare event array.  ada-trace uses it to merge,
// filter, and analyse traces offline.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "obs/events.hpp"

namespace ada::obs {

/// Chrome pid of the functional (wall-clock) plane.
inline constexpr std::uint32_t kFunctionalPid = 1;
/// Chrome pid of the simulated (sim-time) plane.
inline constexpr std::uint32_t kSimPid = 2;

/// One trace event in exported/parsed form.  `ts_us` is Chrome's microsecond
/// timestamp (fractional part keeps nanosecond precision).
struct ExportEvent {
  std::string name;
  char ph = 'i';  // B, E, i, C (metadata M events are consumed, not surfaced)
  double ts_us = 0.0;
  std::uint32_t pid = kFunctionalPid;
  std::uint64_t tid = 0;
  std::string tag;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  std::uint64_t value = 0;
};

/// Serialise recorder events (plus lane labels for track naming) to Chrome
/// trace JSON.  Events are stably sorted by (pid, tid, ts) -- per-ring
/// record order breaks ties -- so output is deterministic for goldens.
std::string to_chrome_json(const std::vector<RawEvent>& events,
                           const std::vector<std::pair<std::uint32_t, std::string>>& lanes);

/// Snapshot the live recorder and serialise it.
std::string capture_chrome_json();

/// Snapshot the live recorder and write the JSON to `path`.
Status write_chrome_json(const std::string& path);

/// Parse Chrome trace JSON back into events.  Metadata rows ("ph":"M") feed
/// `lane_names` (pid-2 tid -> label) and are not returned as events.
Result<std::vector<ExportEvent>> parse_chrome_json(
    std::string_view json,
    std::vector<std::pair<std::uint64_t, std::string>>* lane_names = nullptr);

}  // namespace ada::obs
