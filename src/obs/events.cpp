#include "obs/events.hpp"

#include <chrono>
#include <memory>
#include <mutex>

#include "common/log.hpp"

namespace ada::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};
std::atomic<std::uint64_t> g_next_trace_id{1};
std::atomic<std::uint64_t> g_next_span_id{1};
std::atomic<std::size_t> g_default_capacity{8192};

// TraceContext is trivially constructible/destructible, so this TLS slot
// costs a plain load on access.
thread_local TraceContext tls_context;

std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Process trace epoch: wall timestamps are relative to it so traces start
/// near t=0 regardless of machine uptime.
std::uint64_t wall_now_ns() noexcept {
  static const std::uint64_t epoch = steady_ns();
  return steady_ns() - epoch;
}

std::uint64_t sim_ns(double sim_seconds) noexcept {
  if (sim_seconds < 0.0) return 0;
  return static_cast<std::uint64_t>(sim_seconds * 1e9);
}

void pack_tag(const char (&tag)[16], std::uint64_t& lo, std::uint64_t& hi) noexcept {
  std::uint8_t bytes[16];
  std::memcpy(bytes, tag, 16);
  lo = hi = 0;
  for (int i = 0; i < 8; ++i) lo |= std::uint64_t{bytes[i]} << (8 * i);
  for (int i = 0; i < 8; ++i) hi |= std::uint64_t{bytes[8 + i]} << (8 * i);
}

void unpack_tag(std::uint64_t lo, std::uint64_t hi, char (&tag)[16]) noexcept {
  for (int i = 0; i < 8; ++i) tag[i] = static_cast<char>((lo >> (8 * i)) & 0xff);
  for (int i = 0; i < 8; ++i) tag[8 + i] = static_cast<char>((hi >> (8 * i)) & 0xff);
  tag[15] = '\0';  // defensive: the packed form is always NUL-padded anyway
}

}  // namespace

namespace detail {

// One seqlock slot.  Every payload field is a relaxed atomic so a snapshot
// taken concurrently with recording is data-race-free (TSan-clean); the
// sequence word lets the reader detect and skip slots caught mid-write or
// already overwritten by a newer generation.
struct Slot {
  std::atomic<std::uint64_t> seq{0};  // 2*i+1 while writing event i, 2*i+2 once stable
  std::atomic<std::uint64_t> ts_ns{0};
  std::atomic<std::uint64_t> trace_id{0};
  std::atomic<std::uint64_t> span_id{0};
  std::atomic<std::uint64_t> parent_span{0};
  std::atomic<std::uint64_t> value{0};
  std::atomic<std::uint64_t> tag_lo{0};
  std::atomic<std::uint64_t> tag_hi{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> misc{0};  // lane << 8 | phase
};

class EventRing {
 public:
  EventRing(std::size_t capacity, std::uint32_t thread_index)
      : slots_(capacity), mask_(capacity - 1), thread_index_(thread_index) {}

  /// Single producer: only the owning thread records.
  void record(RawEvent::Phase phase, const char* name, std::uint64_t ts,
              std::uint32_t lane, std::uint64_t trace_id, std::uint64_t span_id,
              std::uint64_t parent, std::uint64_t value, const char (&tag)[16]) noexcept {
    const std::uint64_t i = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[i & mask_];
    slot.seq.store(2 * i + 1, std::memory_order_release);
    slot.ts_ns.store(ts, std::memory_order_relaxed);
    slot.trace_id.store(trace_id, std::memory_order_relaxed);
    slot.span_id.store(span_id, std::memory_order_relaxed);
    slot.parent_span.store(parent, std::memory_order_relaxed);
    slot.value.store(value, std::memory_order_relaxed);
    std::uint64_t lo = 0, hi = 0;
    pack_tag(tag, lo, hi);
    slot.tag_lo.store(lo, std::memory_order_relaxed);
    slot.tag_hi.store(hi, std::memory_order_relaxed);
    slot.name.store(name, std::memory_order_relaxed);
    slot.misc.store((std::uint64_t{lane} << 8) | static_cast<std::uint64_t>(phase),
                    std::memory_order_relaxed);
    slot.seq.store(2 * i + 2, std::memory_order_release);
    head_.store(i + 1, std::memory_order_release);
  }

  void snapshot(std::vector<RawEvent>& out) const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t floor = floor_.load(std::memory_order_acquire);
    const std::uint64_t capacity = mask_ + 1;
    std::uint64_t start = head > capacity ? head - capacity : 0;
    if (floor > start) start = floor;
    for (std::uint64_t i = start; i < head; ++i) {
      const Slot& slot = slots_[i & mask_];
      const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 != 2 * i + 2) continue;  // mid-write or already overwritten
      RawEvent event;
      event.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
      event.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      event.span_id = slot.span_id.load(std::memory_order_relaxed);
      event.parent_span = slot.parent_span.load(std::memory_order_relaxed);
      event.value = slot.value.load(std::memory_order_relaxed);
      const std::uint64_t lo = slot.tag_lo.load(std::memory_order_relaxed);
      const std::uint64_t hi = slot.tag_hi.load(std::memory_order_relaxed);
      const char* name = slot.name.load(std::memory_order_relaxed);
      const std::uint64_t misc = slot.misc.load(std::memory_order_relaxed);
      const std::uint64_t s2 = slot.seq.load(std::memory_order_acquire);
      if (s2 != s1) continue;  // overwritten while copying
      unpack_tag(lo, hi, event.tag);
      event.name = name != nullptr ? name : "";
      event.lane = static_cast<std::uint32_t>(misc >> 8);
      event.phase = static_cast<RawEvent::Phase>(misc & 0xff);
      event.thread = thread_index_;
      out.push_back(event);
    }
  }

  void forget() noexcept {
    floor_.store(head_.load(std::memory_order_acquire), std::memory_order_release);
  }

  std::uint64_t dropped() const noexcept {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t floor = floor_.load(std::memory_order_acquire);
    const std::uint64_t capacity = mask_ + 1;
    const std::uint64_t since_reset = head > floor ? head - floor : 0;
    return since_reset > capacity ? since_reset - capacity : 0;
  }

 private:
  std::vector<Slot> slots_;
  std::uint64_t mask_;
  std::uint32_t thread_index_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> floor_{0};  // reset_events() watermark
};

}  // namespace detail

namespace {

struct RingRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<detail::EventRing>> rings;
};

RingRegistry& ring_registry() {
  static RingRegistry* registry = new RingRegistry();  // outlives TLS teardown
  return *registry;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

/// The calling thread's ring, created on first *enabled* record.  The
/// registry owns it so short-lived workers leave their events behind.
detail::EventRing& local_ring() {
  thread_local detail::EventRing* tls = [] {
    RingRegistry& registry = ring_registry();
    std::lock_guard lock(registry.mutex);
    auto ring = std::make_unique<detail::EventRing>(
        round_up_pow2(g_default_capacity.load(std::memory_order_relaxed)),
        static_cast<std::uint32_t>(registry.rings.size()));
    detail::EventRing* raw = ring.get();
    registry.rings.push_back(std::move(ring));
    return raw;
  }();
  return *tls;
}

struct LaneRegistry {
  std::mutex mutex;
  std::vector<std::string> labels;  // lane id = index + 1 (0 is the functional plane)
};

LaneRegistry& lane_registry() {
  static LaneRegistry* registry = new LaneRegistry();
  return *registry;
}

// Log-line join hook: when tracing is on and a trace is in flight, log
// prefixes carry "trace=<trace>/<span>" so logs and timelines can be joined
// offline.  Installed once at static init; a no-op while tracing is off.
void trace_log_prefix(std::string& out) {
  if (!trace_enabled()) return;
  const TraceContext context = current_context();
  if (!context.active()) return;
  out += " trace=" + std::to_string(context.trace_id) + "/" + std::to_string(context.span_id);
}

[[maybe_unused]] const bool g_log_hook_installed = [] {
  set_log_prefix_hook(&trace_log_prefix);
  return true;
}();

}  // namespace

bool trace_enabled() noexcept { return g_trace_enabled.load(std::memory_order_relaxed); }
void set_trace_enabled(bool on) noexcept {
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

TraceContext current_context() noexcept { return tls_context; }
void set_current_context(const TraceContext& context) noexcept { tls_context = context; }

void TraceSpan::open(const char* name, std::string_view tag) noexcept {
  if (!trace_enabled()) return;  // the single relaxed load on the disabled path
  saved_ = tls_context;
  TraceContext context = saved_;
  if (context.trace_id == 0) {
    context.trace_id = g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
  }
  if (!tag.empty()) context.set_tag(tag);
  span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t parent = context.span_id;
  context.span_id = span_id_;
  tls_context = context;
  detail::EventRing& ring = local_ring();
  ring.record(RawEvent::Phase::kBegin, name, wall_now_ns(), 0, context.trace_id, span_id_,
              parent, 0, context.tag);
  ring_ = &ring;
  name_ = name;
}

TraceSpan::~TraceSpan() {
  if (ring_ == nullptr) return;
  // Record the end even if tracing was just switched off: an unbalanced
  // begin would corrupt every later pairing on this lane.
  const TraceContext context = tls_context;
  ring_->record(RawEvent::Phase::kEnd, name_, wall_now_ns(), 0, context.trace_id, span_id_,
                saved_.span_id, 0, context.tag);
  tls_context = saved_;
}

void trace_instant(const char* name, std::uint64_t value) noexcept {
  if (!trace_enabled()) return;
  const TraceContext context = tls_context;
  local_ring().record(RawEvent::Phase::kInstant, name, wall_now_ns(), 0, context.trace_id,
                      context.span_id, context.span_id, value, context.tag);
}

void trace_counter(const char* name, std::uint64_t value) noexcept {
  if (!trace_enabled()) return;
  const TraceContext context = tls_context;
  local_ring().record(RawEvent::Phase::kCounter, name, wall_now_ns(), 0, context.trace_id,
                      context.span_id, context.span_id, value, context.tag);
}

std::uint32_t register_lane(const std::string& label) {
  LaneRegistry& registry = lane_registry();
  std::lock_guard lock(registry.mutex);
  registry.labels.push_back(label);
  return static_cast<std::uint32_t>(registry.labels.size());
}

std::uint64_t sim_begin(std::uint32_t lane, const char* name, double sim_seconds,
                        const TraceContext& context, std::uint64_t value) noexcept {
  if (!trace_enabled()) return 0;
  const std::uint64_t span = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  local_ring().record(RawEvent::Phase::kBegin, name, sim_ns(sim_seconds), lane,
                      context.trace_id, span, context.span_id, value, context.tag);
  return span;
}

void sim_end(std::uint32_t lane, const char* name, double sim_seconds,
             std::uint64_t span_id, const TraceContext& context) noexcept {
  if (span_id == 0) return;  // begin was skipped: stay balanced
  local_ring().record(RawEvent::Phase::kEnd, name, sim_ns(sim_seconds), lane,
                      context.trace_id, span_id, context.span_id, 0, context.tag);
}

void sim_counter(std::uint32_t lane, const char* name, double sim_seconds,
                 std::uint64_t value) noexcept {
  if (!trace_enabled()) return;
  static constexpr char kNoTag[16] = {};
  local_ring().record(RawEvent::Phase::kCounter, name, sim_ns(sim_seconds), lane, 0, 0, 0,
                      value, kNoTag);
}

std::vector<RawEvent> snapshot_events() {
  std::vector<RawEvent> out;
  RingRegistry& registry = ring_registry();
  std::lock_guard lock(registry.mutex);
  for (const auto& ring : registry.rings) ring->snapshot(out);
  return out;
}

std::vector<std::pair<std::uint32_t, std::string>> lane_labels() {
  std::vector<std::pair<std::uint32_t, std::string>> out;
  LaneRegistry& registry = lane_registry();
  std::lock_guard lock(registry.mutex);
  out.reserve(registry.labels.size());
  for (std::size_t i = 0; i < registry.labels.size(); ++i) {
    out.emplace_back(static_cast<std::uint32_t>(i + 1), registry.labels[i]);
  }
  return out;
}

void set_default_ring_capacity(std::size_t events) {
  g_default_capacity.store(events < 8 ? 8 : events, std::memory_order_relaxed);
}

std::size_t ring_count() noexcept {
  RingRegistry& registry = ring_registry();
  std::lock_guard lock(registry.mutex);
  return registry.rings.size();
}

std::uint64_t events_dropped() noexcept {
  std::uint64_t total = 0;
  RingRegistry& registry = ring_registry();
  std::lock_guard lock(registry.mutex);
  for (const auto& ring : registry.rings) total += ring->dropped();
  return total;
}

void reset_events() {
  RingRegistry& registry = ring_registry();
  {
    std::lock_guard lock(registry.mutex);
    for (const auto& ring : registry.rings) ring->forget();
  }
  g_next_trace_id.store(1, std::memory_order_relaxed);
  g_next_span_id.store(1, std::memory_order_relaxed);
}

}  // namespace ada::obs
