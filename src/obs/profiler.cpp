#include "obs/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "common/strings.hpp"
#include "obs/trace.hpp"

namespace ada::obs {

SamplingProfiler::SamplingProfiler(ProfilerOptions options)
    : options_(std::move(options)) {}

SamplingProfiler::~SamplingProfiler() { (void)stop(); }

Status SamplingProfiler::start() {
  if (options_.interval_us == 0) {
    return invalid_argument("profiler: interval_us must be > 0 to start the ticker");
  }
  if (ticker_.joinable()) {
    return failed_precondition("profiler: ticker already running");
  }
  stop_requested_ = false;
  ticker_ = std::thread(&SamplingProfiler::ticker_main, this);
  return Status::ok();
}

Status SamplingProfiler::stop() {
  {
    std::lock_guard lock(stop_mutex_);
    if (stopped_) return Status::ok();
    stopped_ = true;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
  if (options_.path.empty()) return Status::ok();
  std::FILE* file = std::fopen(options_.path.c_str(), "wb");
  if (file == nullptr) {
    return io_error("profiler: cannot open " + options_.path);
  }
  const std::string text = folded_text();
  const bool wrote = std::fwrite(text.data(), 1, text.size(), file) == text.size();
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !closed) {
    return io_error("profiler: short write to " + options_.path);
  }
  return Status::ok();
}

void SamplingProfiler::ticker_main() {
  const auto interval = std::chrono::microseconds(options_.interval_us);
  std::unique_lock lock(stop_mutex_);
  while (!stop_requested_) {
    if (stop_cv_.wait_for(lock, interval, [this] { return stop_requested_; })) break;
    lock.unlock();
    sample_once();
    lock.lock();
  }
}

void SamplingProfiler::sample_once() {
  const std::vector<std::string> stacks = sample_active_stacks();
  std::lock_guard lock(mutex_);
  ++samples_;
  for (const std::string& stack : stacks) ++folded_[stack];
}

std::map<std::string, std::uint64_t> SamplingProfiler::folded() const {
  std::lock_guard lock(mutex_);
  return folded_;
}

std::string SamplingProfiler::folded_text() const {
  std::string out;
  std::lock_guard lock(mutex_);
  for (const auto& [stack, hits] : folded_) {
    out += stack + ' ' + std::to_string(hits) + '\n';
  }
  return out;
}

std::vector<SamplingProfiler::StageRow> SamplingProfiler::stage_table() const {
  std::map<std::string, StageRow> rows;
  {
    std::lock_guard lock(mutex_);
    for (const auto& [stack, hits] : folded_) {
      const std::vector<std::string> frames = split(stack, ';');
      // A stage recursing within one stack still counts its samples once.
      const std::set<std::string> unique(frames.begin(), frames.end());
      for (const std::string& frame : unique) {
        StageRow& row = rows[frame];
        row.name = frame;
        row.total += hits;
      }
      if (!frames.empty()) rows[frames.back()].self += hits;
    }
  }
  std::vector<StageRow> out;
  out.reserve(rows.size());
  for (auto& [name, row] : rows) out.push_back(std::move(row));
  std::sort(out.begin(), out.end(), [](const StageRow& a, const StageRow& b) {
    return a.self != b.self ? a.self > b.self : a.name < b.name;
  });
  return out;
}

std::uint64_t SamplingProfiler::samples() const {
  std::lock_guard lock(mutex_);
  return samples_;
}

namespace {

std::atomic<bool> g_profiler_active{false};
std::mutex g_profiler_mutex;
std::unique_ptr<SamplingProfiler>& global_profiler() {
  static std::unique_ptr<SamplingProfiler>* profiler =
      new std::unique_ptr<SamplingProfiler>();
  return *profiler;
}

}  // namespace

Status start_profiler(const std::string& spec) {
  ProfilerOptions options;
  const std::size_t comma = spec.find(',');
  options.path = spec.substr(0, comma);
  if (options.path.empty()) {
    return invalid_argument("profiler: output path is empty (want FILE[,interval_us])");
  }
  if (comma != std::string::npos) {
    const std::string interval = spec.substr(comma + 1);
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(interval.c_str(), &end, 10);
    if (interval.empty() || end == nullptr || *end != '\0' || parsed == 0) {
      return invalid_argument("profiler: bad interval '" + interval +
                              "' in spec '" + spec + "' (want FILE[,interval_us])");
    }
    options.interval_us = parsed;
  }
  std::lock_guard lock(g_profiler_mutex);
  if (global_profiler() != nullptr) {
    return failed_precondition("profiler: already started");
  }
  auto profiler = std::make_unique<SamplingProfiler>(std::move(options));
  ADA_RETURN_IF_ERROR(profiler->start());
  global_profiler() = std::move(profiler);
  g_profiler_active.store(true, std::memory_order_relaxed);
  return Status::ok();
}

Status stop_profiler() {
  std::lock_guard lock(g_profiler_mutex);
  if (global_profiler() == nullptr) return Status::ok();
  g_profiler_active.store(false, std::memory_order_relaxed);
  const Status status = global_profiler()->stop();
  global_profiler().reset();
  return status;
}

bool profiler_active() noexcept {
  return g_profiler_active.load(std::memory_order_relaxed);
}

}  // namespace ada::obs
