// Process-wide metrics: named counters, gauges and log-scale histograms.
//
// The observability substrate for the ingest/query hot paths.  Instruments
// live in a global Registry and are updated through lock-free std::atomic
// fast paths, so the parallel_run ingest workers (common/parallel.hpp) can
// hammer the same counter without contention or lost increments.  Creation
// (name -> instrument) takes a mutex once; hot call sites cache the returned
// reference in a function-local static.  Registry::reset() zeroes values but
// never invalidates references, so cached pointers stay good for the life of
// the process.
//
// Everything honors a global enabled() switch: with metrics off the fast
// paths reduce to one relaxed atomic load, and the differential e2e harness
// (tests/e2e_pipeline_test.cpp) proves the data path is byte-identical
// either way.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace ada::obs {

/// Global metrics switch.  Off by default: libraries pay one relaxed load
/// per instrument call until a tool, bench or test turns observation on.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonically increasing event/byte count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    if (!enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level (queue depths, configured sizes).
class Gauge {
 public:
  void set(double value) noexcept {
    if (!enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }

  void add(double delta) noexcept {
    if (!enabled()) return;
    double seen = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(seen, seen + delta, std::memory_order_relaxed)) {
    }
  }

  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-scale (power-of-two bucket) histogram of non-negative integers.
/// Bucket b >= 1 covers [2^(b-1), 2^b - 1]; bucket 0 holds exact zeros.
///
/// Quantiles interpolate linearly inside the matched bucket.  The accuracy
/// contract (unit-tested in tests/obs_test.cpp):
///   * bucket 0 is exact: if the quantile falls on a zero observation the
///     result is exactly 0;
///   * otherwise the result lies in the matched bucket's value range
///     [2^(b-1), 2^b - 1] clamped to the observed max, so the relative
///     error against the true quantile is bounded by a factor of two (the
///     bucket width) -- the right trade for latency-in-nanoseconds and
///     bytes-per-op distributions;
///   * an all-identical stream of value v == 2^(b-1) (a lower bucket edge)
///     therefore reports every quantile in [v, min(2v - 1, max)] == [v, v]
///     after the max clamp -- edges degrade gracefully, never past max;
///   * percentile(1.0) is always <= max(), and monotone in q.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t value) noexcept {
    if (!enabled()) return;
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const noexcept { return max_.load(std::memory_order_relaxed); }
  double mean() const noexcept;

  /// Approximate value at quantile q in [0, 1] (0 when empty).
  double percentile(double q) const noexcept;

  std::uint64_t bucket_count(std::size_t bucket) const noexcept {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }

  void reset() noexcept;

  static std::size_t bucket_of(std::uint64_t value) noexcept {
    return value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Name -> instrument directory.  Lookup is idempotent: the first call
/// creates, every later call returns the same object.
class Registry {
 public:
  /// The process-wide registry every instrumented module reports into.
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Current value by name; 0 when the instrument was never created.
  std::uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;

  std::size_t counter_count() const;

  /// Zero every instrument.  References handed out earlier remain valid.
  void reset();

  /// Stable (sorted) copies of all current values, for the exporters.
  std::map<std::string, std::uint64_t> counter_values() const;
  std::map<std::string, double> gauge_values() const;
  std::map<std::string, const Histogram*> histogram_entries() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Quantile over an explicit log-scale bucket-count array (the Histogram
/// bucket shape), with the same interpolation and accuracy contract as
/// Histogram::percentile.  `count` is the total observation count in
/// `buckets`; `max_value` clamps the top end (pass the observed max, or the
/// cumulative max as an upper bound for windowed deltas).  Shared by
/// Histogram::percentile and the telemetry sampler's windowed percentiles
/// (obs/telemetry.hpp), which diffs two bucket snapshots and asks for the
/// quantile of just the window.
double percentile_from_buckets(const std::array<std::uint64_t, 65>& buckets,
                               std::uint64_t count, double q,
                               std::uint64_t max_value) noexcept;

/// Hot-path helpers: cache the instrument in a function-local static so the
/// per-event cost is one branch + one relaxed atomic op.
#define ADA_OBS_COUNT(name_literal, delta)                                    \
  do {                                                                        \
    if (::ada::obs::enabled()) {                                              \
      static ::ada::obs::Counter& ada_obs_counter__ =                         \
          ::ada::obs::Registry::global().counter(name_literal);               \
      ada_obs_counter__.add(static_cast<std::uint64_t>(delta));               \
    }                                                                         \
  } while (false)

#define ADA_OBS_OBSERVE(name_literal, value)                                  \
  do {                                                                        \
    if (::ada::obs::enabled()) {                                              \
      static ::ada::obs::Histogram& ada_obs_hist__ =                          \
          ::ada::obs::Registry::global().histogram(name_literal);             \
      ada_obs_hist__.observe(static_cast<std::uint64_t>(value));              \
    }                                                                         \
  } while (false)

}  // namespace ada::obs
