#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/table.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"

namespace ada::obs {

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  // Shortest stable form: integers print without a fraction.
  char buf[40];
  if (value == static_cast<double>(static_cast<std::int64_t>(value))) {
    std::snprintf(buf, sizeof buf, "%" PRId64, static_cast<std::int64_t>(value));
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", value);
  }
  return buf;
}

namespace {

std::string ns_cell(std::uint64_t ns) {
  return format_seconds(static_cast<double>(ns) * 1e-9);
}

}  // namespace

Snapshot capture() {
  const Registry& registry = Registry::global();
  Snapshot snapshot;
  snapshot.counters = registry.counter_values();
  snapshot.gauges = registry.gauge_values();
  for (const auto& [name, histogram] : registry.histogram_entries()) {
    Snapshot::HistogramStat stat;
    stat.count = histogram->count();
    stat.sum = histogram->sum();
    stat.max = histogram->max();
    stat.mean = histogram->mean();
    stat.p50 = histogram->percentile(0.50);
    stat.p90 = histogram->percentile(0.90);
    stat.p99 = histogram->percentile(0.99);
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      stat.buckets[b] = histogram->bucket_count(b);
    }
    snapshot.histograms.emplace(name, stat);
  }
  snapshot.spans = span_stats();
  return snapshot;
}

void reset_all() {
  Registry::global().reset();
  reset_spans();
}

std::string to_json(const Snapshot& snapshot) {
  std::string out = "{\"version\":1,\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + json_number(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) + ",\"max\":" + std::to_string(h.max) +
           ",\"mean\":" + json_number(h.mean) + ",\"p50\":" + json_number(h.p50) +
           ",\"p90\":" + json_number(h.p90) + ",\"p99\":" + json_number(h.p99) + '}';
  }
  out += "},\"spans\":[";
  first = true;
  for (const SpanStat& span : snapshot.spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"path\":\"" + json_escape(span.path) +
           "\",\"depth\":" + std::to_string(span.depth) +
           ",\"calls\":" + std::to_string(span.calls) +
           ",\"total_ns\":" + std::to_string(span.total_ns) +
           ",\"self_ns\":" + std::to_string(span.self_ns) + '}';
  }
  out += "]}";
  return out;
}

namespace {

// OpenMetrics metric names: [a-zA-Z_][a-zA-Z0-9_]*, prefixed "ada_".
std::string om_name(const std::string& raw) {
  std::string out = "ada_";
  for (const char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

// Label values escape backslash, double-quote and newline per the spec.
std::string om_label_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string u64_text(std::uint64_t v) { return std::to_string(v); }

}  // namespace

std::string to_openmetrics(const Snapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = om_name(name);
    out += "# HELP " + metric + " ADA counter " + name + "\n";
    out += "# TYPE " + metric + " counter\n";
    out += metric + "_total " + u64_text(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = om_name(name);
    out += "# HELP " + metric + " ADA gauge " + name + "\n";
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + json_number(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string metric = om_name(name);
    out += "# HELP " + metric + " ADA log-scale histogram " + name + "\n";
    out += "# TYPE " + metric + " histogram\n";
    // Cumulative counts on the power-of-two bucket upper edges.  Stop the
    // finite edges at the highest populated bucket; +Inf always closes.
    std::size_t top = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] != 0) top = b;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b <= top; ++b) {
      cumulative += h.buckets[b];
      // Bucket b >= 1 covers [2^(b-1), 2^b - 1]; bucket 0 is exact zeros.
      const std::uint64_t edge = b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
      out += metric + "_bucket{le=\"" + u64_text(edge) + "\"} " +
             u64_text(cumulative) + "\n";
    }
    out += metric + "_bucket{le=\"+Inf\"} " + u64_text(h.count) + "\n";
    out += metric + "_sum " + u64_text(h.sum) + "\n";
    out += metric + "_count " + u64_text(h.count) + "\n";
  }
  if (!snapshot.spans.empty()) {
    out += "# HELP ada_span_calls ADA span call counts by tree path\n";
    out += "# TYPE ada_span_calls counter\n";
    for (const SpanStat& span : snapshot.spans) {
      out += "ada_span_calls_total{path=\"" + om_label_escape(span.path) +
             "\"} " + u64_text(span.calls) + "\n";
    }
    out += "# HELP ada_span_time_ns ADA span total (inclusive) nanoseconds\n";
    out += "# TYPE ada_span_time_ns counter\n";
    for (const SpanStat& span : snapshot.spans) {
      out += "ada_span_time_ns_total{path=\"" + om_label_escape(span.path) +
             "\"} " + u64_text(span.total_ns) + "\n";
    }
    out += "# HELP ada_span_self_ns ADA span self (exclusive) nanoseconds\n";
    out += "# TYPE ada_span_self_ns counter\n";
    for (const SpanStat& span : snapshot.spans) {
      out += "ada_span_self_ns_total{path=\"" + om_label_escape(span.path) +
             "\"} " + u64_text(span.self_ns) + "\n";
    }
  }
  out += "# EOF\n";
  return out;
}

void print_tables(const Snapshot& snapshot, std::ostream& os) {
  if (!snapshot.counters.empty() || !snapshot.gauges.empty()) {
    Table table({"counter", "value"});
    for (const auto& [name, value] : snapshot.counters) {
      table.add_row({name, std::to_string(value)});
    }
    for (const auto& [name, value] : snapshot.gauges) {
      table.add_row({name + " (gauge)", json_number(value)});
    }
    os << "-- counters --\n";
    table.print(os);
  }
  if (!snapshot.histograms.empty()) {
    Table table({"histogram", "count", "mean", "p50", "p90", "p99", "max"});
    for (const auto& [name, h] : snapshot.histograms) {
      table.add_row({name, std::to_string(h.count), json_number(h.mean), json_number(h.p50),
                     json_number(h.p90), json_number(h.p99), std::to_string(h.max)});
    }
    os << "-- histograms --\n";
    table.print(os);
  }
  if (!snapshot.spans.empty()) {
    Table table({"span", "calls", "total", "self"});
    for (const SpanStat& span : snapshot.spans) {
      table.add_row({std::string(static_cast<std::size_t>(span.depth) * 2, ' ') + span.name,
                     std::to_string(span.calls), ns_cell(span.total_ns), ns_cell(span.self_ns)});
    }
    os << "-- spans --\n";
    table.print(os);
  }
}

}  // namespace ada::obs
