#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace ada::obs {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

double percentile_from_buckets(const std::array<std::uint64_t, 65>& buckets,
                               std::uint64_t count, double q,
                               std::uint64_t max_value) noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile, 1-based; walk buckets until we pass it.
  const auto rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= std::max<std::uint64_t>(rank, 1)) {
      if (b == 0) return 0.0;
      // Linear interpolation across the bucket's value range.
      const double lo = std::ldexp(1.0, static_cast<int>(b) - 1);
      const double hi = std::ldexp(1.0, static_cast<int>(b)) - 1.0;
      const double into =
          static_cast<double>(std::max<std::uint64_t>(rank, 1) - seen - 1) /
          static_cast<double>(in_bucket);
      return std::min(lo + (hi - lo) * into, static_cast<double>(max_value));
    }
    seen += in_bucket;
  }
  return static_cast<double>(max_value);
}

double Histogram::percentile(double q) const noexcept {
  std::array<std::uint64_t, kBuckets> counts;
  for (std::size_t b = 0; b < kBuckets; ++b) counts[b] = bucket_count(b);
  return percentile_from_buckets(counts, count(), q, max());
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry* registry = new Registry();  // never destroyed: outlives TLS
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double Registry::gauge_value(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

std::size_t Registry::counter_count() const {
  std::lock_guard lock(mutex_);
  return counters_.size();
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

std::map<std::string, std::uint64_t> Registry::counter_values() const {
  std::lock_guard lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

std::map<std::string, double> Registry::gauge_values() const {
  std::lock_guard lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

std::map<std::string, const Histogram*> Registry::histogram_entries() const {
  std::lock_guard lock(mutex_);
  std::map<std::string, const Histogram*> out;
  for (const auto& [name, histogram] : histograms_) out[name] = histogram.get();
  return out;
}

}  // namespace ada::obs
