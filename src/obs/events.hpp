// Request-timeline event recorder: per-thread, lock-free ring buffers.
//
// The span tree (obs/trace.hpp) answers "where does time go on average";
// this layer answers "where did *this request's* time go".  Every recorded
// event carries a propagated TraceContext (trace id, parent span id, data
// tag), a timestamp, and a lane, so the exporter (obs/trace_export.hpp) can
// reconstruct one merged timeline of functional (wall-clock) and simulated
// (sim-time) activity -- the per-request equivalent of the paper's
// Figs. 7-10 stage breakdowns.
//
// Recording is lock-free: each thread owns a fixed-capacity ring of seqlock
// slots (every field a relaxed atomic, so a concurrent snapshot is race-free
// and simply skips slots it catches mid-write).  On wraparound the oldest
// events are overwritten -- the newest always survive.  With tracing
// disabled every instrumented call site reduces to ONE relaxed atomic load
// (`trace_enabled()`); no TLS ring is even created.
//
// Two planes share the event type:
//   * lane 0  -- functional plane: wall-clock nanoseconds since the process
//                trace epoch, one Chrome "tid" per recording thread.
//   * lane >0 -- simulated plane: sim-time nanoseconds on a virtual lane
//                registered by the emitting component (a PVFS server, an
//                FCFS resource, a fabric NIC), rendered as its own track.
//
// Event names must be string literals (slots keep the pointer); dynamic
// identity (data tags, resource names) travels in the 15-char tag field or
// in the lane label.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ada::obs {

/// Propagated request identity.  `span_id` is the innermost open span --
/// the parent of anything opened beneath it.  A zero `trace_id` means "no
/// request in flight"; the next TraceSpan starts a fresh trace.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  char tag[16] = {};  // data-subset tag, truncated to 15 chars + NUL

  void set_tag(std::string_view t) noexcept {
    const std::size_t n = t.size() < sizeof(tag) - 1 ? t.size() : sizeof(tag) - 1;
    if (n != 0) std::memcpy(tag, t.data(), n);
    tag[n] = '\0';
  }
  bool active() const noexcept { return trace_id != 0; }
};

/// Global tracing switch, independent of the metrics switch: a bench can
/// collect counters without paying for a timeline, and vice versa.
bool trace_enabled() noexcept;
void set_trace_enabled(bool on) noexcept;

/// The calling thread's context (zero when no trace is in flight).
TraceContext current_context() noexcept;
void set_current_context(const TraceContext& context) noexcept;

/// RAII set/restore of the thread's context.  parallel_run workers adopt
/// the submitting thread's context through this, so spans opened inside a
/// worker join the caller's trace.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context) noexcept
      : saved_(current_context()) {
    set_current_context(context);
  }
  ~ScopedTraceContext() { set_current_context(saved_); }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

namespace detail {
class EventRing;
}

/// RAII begin/end event pair on the functional plane.  Opening a span with
/// no trace in flight starts a new trace id; nested spans inherit the trace
/// and parent ids through the thread's context.  One relaxed load and
/// nothing else while tracing is disabled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept { open(name, {}); }
  TraceSpan(const char* name, std::string_view tag) noexcept { open(name, tag); }
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void open(const char* name, std::string_view tag) noexcept;

  detail::EventRing* ring_ = nullptr;  // null when tracing was off at entry
  const char* name_ = nullptr;
  std::uint64_t span_id_ = 0;
  TraceContext saved_;
};

/// Point event / counter sample under the thread's current context.
void trace_instant(const char* name, std::uint64_t value = 0) noexcept;
void trace_counter(const char* name, std::uint64_t value) noexcept;

// --- simulated plane ------------------------------------------------------------------

/// Allocate a virtual lane for sim-time events.  Every call creates a NEW
/// lane (labels may repeat across model instances); a lane's events are
/// monotone in sim time because each instance runs one simulation.  Cold
/// path only -- call from constructors or first-use, never per event.
std::uint32_t register_lane(const std::string& label);

/// Begin a sim-time span on `lane` at `sim_seconds`; returns the span id to
/// close it with (0 while tracing is disabled -- sim_end then no-ops, so
/// begin/end stay balanced across enable/disable flips).
std::uint64_t sim_begin(std::uint32_t lane, const char* name, double sim_seconds,
                        const TraceContext& context, std::uint64_t value = 0) noexcept;
void sim_end(std::uint32_t lane, const char* name, double sim_seconds,
             std::uint64_t span_id, const TraceContext& context) noexcept;
void sim_counter(std::uint32_t lane, const char* name, double sim_seconds,
                 std::uint64_t value) noexcept;

// --- snapshot / administration --------------------------------------------------------

/// One decoded event, as stored by the recorder.
struct RawEvent {
  enum class Phase : std::uint8_t { kBegin = 0, kEnd = 1, kInstant = 2, kCounter = 3 };
  Phase phase = Phase::kInstant;
  const char* name = "";  // string literal
  char tag[16] = {};
  std::uint64_t ts_ns = 0;  // wall ns since trace epoch (lane 0) or sim ns (lane > 0)
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  std::uint64_t value = 0;
  std::uint32_t lane = 0;    // 0 = functional plane
  std::uint32_t thread = 0;  // recording thread's index (registration order)
};

/// Race-free copy of every ring's surviving events, in per-ring record
/// order.  Safe to call while other threads are still recording; slots
/// caught mid-write are skipped.
std::vector<RawEvent> snapshot_events();

/// (lane id, label) for every lane registered so far.
std::vector<std::pair<std::uint32_t, std::string>> lane_labels();

/// Ring capacity (events per thread) for rings created AFTER this call;
/// rounded up to a power of two, minimum 8.  Existing rings keep theirs.
void set_default_ring_capacity(std::size_t events);

/// Rings created so far.  The disabled fast path never creates one, which
/// is how tests pin down "one relaxed load and nothing else".
std::size_t ring_count() noexcept;

/// Events lost to ring wraparound since the last reset_events().
std::uint64_t events_dropped() noexcept;

/// Forget all recorded events (rings and lanes are kept) and restart the
/// trace/span id counters.  Call between measured runs, not mid-record.
void reset_events();

}  // namespace ada::obs
