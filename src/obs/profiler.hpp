// Span-attributed sampling profiler.
//
// A ticker thread periodically walks every thread's currently-open span
// chain (trace.hpp sample_active_stacks) and accumulates collapsed stacks,
// so the cost of profiling is borne by the sampler, not the sampled: the
// instrumented hot paths pay exactly what they already pay for spans -- one
// relaxed load when obs is disabled, an atomic publish of the open-span
// pointer when enabled.  Unlike the exact span tree (calls/total per node),
// the profile answers "where is wall time actually going right now" by
// statistical sampling, and exports in the folded-stack format flamegraph
// tools consume directly:
//
//   ingest;preprocess;decode 42
//   query;plan 7
//
// sample_once() is the deterministic tick used by tests; the ticker thread
// just calls it on a cadence.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"

namespace ada::obs {

struct ProfilerOptions {
  std::string path;                // folded-stack output file ("" = memory only)
  std::uint64_t interval_us = 1000;  // ticker period (1 kHz default)
};

class SamplingProfiler {
 public:
  explicit SamplingProfiler(ProfilerOptions options);
  ~SamplingProfiler();

  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  /// Launch the ticker thread (requires interval_us > 0).
  Status start();

  /// Stop the ticker and, when options.path is set, write folded_text()
  /// there.  Idempotent; safe without a prior start().
  Status stop();

  /// Take one sample of every thread's open span stack right now.
  void sample_once();

  /// Collapsed stacks: "a;b;c" -> number of samples observed there.
  std::map<std::string, std::uint64_t> folded() const;

  /// Flamegraph-ready text: one "a;b;c N" line per stack, sorted by stack,
  /// trailing newline.  Deterministic for a deterministic sample sequence.
  std::string folded_text() const;

  /// Per-stage rollup across all stacks: `total` counts samples where the
  /// stage appears anywhere in the stack, `self` samples where it is the
  /// leaf.  Sorted by self descending, then name.
  struct StageRow {
    std::string name;
    std::uint64_t self = 0;
    std::uint64_t total = 0;
  };
  std::vector<StageRow> stage_table() const;

  /// Total samples taken, including ticks where every thread was idle.
  std::uint64_t samples() const;

 private:
  void ticker_main();

  ProfilerOptions options_;

  mutable std::mutex mutex_;  // guards folded_ and samples_
  std::map<std::string, std::uint64_t> folded_;
  std::uint64_t samples_ = 0;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::thread ticker_;
};

/// Process-global profiler behind `--profile=FILE[,interval_us]`: starts the
/// ticker, and stop_profiler() writes the folded-stack file.
Status start_profiler(const std::string& spec);
Status stop_profiler();
bool profiler_active() noexcept;

}  // namespace ada::obs
