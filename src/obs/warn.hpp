// Rate-limited structured warnings for recoverable runtime trouble.
//
// Libraries that hit a degraded-but-survivable condition (retry budget
// exhausted, degraded read served, cache bypassed) should announce it once
// in a while, not once per event: a fault storm can hit the same site
// millions of times.  warn() routes through ADA_LOG -- so the obs trace-id
// prefix hook applies and lines carry the active trace context -- behind a
// token bucket shared by all sites.  Suppressed warnings are counted
// (`warn.suppressed` in the metrics registry plus a local atomic that works
// even with obs disabled), so the telemetry plane still shows the storm's
// true size while the log stays readable.
#pragma once

#include <cstdint>
#include <string>

namespace ada::obs {

enum class WarnSeverity { kWarn, kError };

/// Emit "[category] message" at `severity` through ADA_LOG, subject to the
/// global token bucket.  `category` should be a stable slug ("retry",
/// "degraded-read", "cache-bypass") so log lines grep cleanly.
void warn(WarnSeverity severity, const char* category, const std::string& message);

/// Reconfigure the bucket: sustained `per_second` emissions with bursts up
/// to `burst`.  Defaults: 5/s, burst 10.
void set_warn_rate(double per_second, double burst);

/// Totals since process start / last reset; live even when obs is disabled.
std::uint64_t warnings_emitted() noexcept;
std::uint64_t warnings_suppressed() noexcept;

/// Refill the bucket and zero the totals (tests).
void reset_warn_state();

}  // namespace ada::obs
