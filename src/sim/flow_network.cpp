#include "sim/flow_network.hpp"

#include <algorithm>
#include <limits>

namespace ada::sim {

namespace {
// Flows within this many bytes of done are considered complete (floating-
// point progress integration).
constexpr double kByteEpsilon = 1e-6;
}  // namespace

LinkId FlowNetwork::add_link(std::string name, double capacity_bytes_per_s) {
  ADA_CHECK(capacity_bytes_per_s > 0.0);
  links_.push_back(Link{std::move(name), capacity_bytes_per_s});
  return static_cast<LinkId>(links_.size() - 1);
}

double FlowNetwork::link_capacity(LinkId id) const { return links_.at(id).capacity; }

const std::string& FlowNetwork::link_name(LinkId id) const { return links_.at(id).name; }

FlowId FlowNetwork::start_flow(std::vector<LinkId> path, double bytes,
                               std::function<void()> on_complete) {
  ADA_CHECK(bytes >= 0.0);
  for (const LinkId link : path) ADA_CHECK(link < links_.size());
  advance_to(simulator_.now());
  const FlowId id = next_flow_id_++;
  total_bytes_started_ += bytes;
  if (bytes <= kByteEpsilon || path.empty()) {
    // Degenerate flows complete immediately (still asynchronously, for
    // uniform callback ordering).
    total_bytes_delivered_ += bytes;
    if (on_complete) simulator_.schedule_after(0.0, std::move(on_complete));
    reschedule();
    return id;
  }
  flows_.push_back(Flow{id, std::move(path), bytes, 0.0, std::move(on_complete)});
  reschedule();
  return id;
}

double FlowNetwork::current_rate(FlowId id) const {
  for (const Flow& f : flows_) {
    if (f.id == id) return f.rate;
  }
  return 0.0;
}

void FlowNetwork::advance_to(SimTime now) {
  ADA_CHECK(now >= last_update_ - 1e-12);
  const double dt = std::max(0.0, now - last_update_);
  if (dt > 0.0) {
    for (Flow& f : flows_) {
      const double moved = std::min(f.remaining, f.rate * dt);
      f.remaining -= moved;
      total_bytes_delivered_ += moved;
    }
  }
  last_update_ = now;

  // Fire completions for drained flows.
  std::vector<std::function<void()>> done;
  for (Flow& f : flows_) {
    if (f.remaining <= kByteEpsilon) {
      total_bytes_delivered_ += f.remaining;
      f.remaining = 0.0;
      if (f.on_complete) done.push_back(std::move(f.on_complete));
    }
  }
  std::erase_if(flows_, [](const Flow& f) { return f.remaining <= 0.0; });
  for (auto& fn : done) simulator_.schedule_after(0.0, std::move(fn));
}

void FlowNetwork::recompute_rates() {
  // Progressive filling (max-min fairness): repeatedly find the most
  // constrained link, freeze its flows at the fair share, remove capacity.
  std::vector<double> residual(links_.size());
  std::vector<std::uint32_t> active_on_link(links_.size(), 0);
  for (std::size_t i = 0; i < links_.size(); ++i) residual[i] = links_[i].capacity;

  std::vector<Flow*> unassigned;
  for (Flow& f : flows_) {
    f.rate = 0.0;
    unassigned.push_back(&f);
    for (const LinkId link : f.path) ++active_on_link[link];
  }

  while (!unassigned.empty()) {
    double bottleneck_share = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < links_.size(); ++i) {
      if (active_on_link[i] == 0) continue;
      bottleneck_share = std::min(bottleneck_share, residual[i] / active_on_link[i]);
    }
    ADA_CHECK(bottleneck_share < std::numeric_limits<double>::infinity());

    // Freeze every flow that crosses a link at the bottleneck share.
    std::vector<Flow*> still_unassigned;
    bool froze_any = false;
    for (Flow* f : unassigned) {
      bool saturated = false;
      for (const LinkId link : f->path) {
        if (residual[link] / active_on_link[link] <= bottleneck_share * (1 + 1e-12)) {
          saturated = true;
          break;
        }
      }
      if (saturated) {
        f->rate = bottleneck_share;
        froze_any = true;
      } else {
        still_unassigned.push_back(f);
      }
    }
    ADA_CHECK(froze_any);
    // Remove frozen flows' rate from their links.
    for (Flow* f : unassigned) {
      if (f->rate > 0.0 || std::find(still_unassigned.begin(), still_unassigned.end(), f) ==
                               still_unassigned.end()) {
        for (const LinkId link : f->path) {
          residual[link] = std::max(0.0, residual[link] - f->rate);
          --active_on_link[link];
        }
      }
    }
    unassigned = std::move(still_unassigned);
  }
}

void FlowNetwork::reschedule() {
  recompute_rates();
  ++timer_generation_;
  if (flows_.empty()) return;
  double next_completion = std::numeric_limits<double>::infinity();
  for (const Flow& f : flows_) {
    if (f.rate > 0.0) next_completion = std::min(next_completion, f.remaining / f.rate);
  }
  ADA_CHECK(next_completion < std::numeric_limits<double>::infinity());
  const std::uint64_t generation = timer_generation_;
  simulator_.schedule_after(next_completion, [this, generation] { on_timer(generation); });
}

void FlowNetwork::on_timer(std::uint64_t generation) {
  if (generation != timer_generation_) return;  // superseded by a newer state change
  advance_to(simulator_.now());
  reschedule();
}

}  // namespace ada::sim
