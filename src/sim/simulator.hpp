// Discrete-event simulator core.
//
// The performance plane of this repository (disks, networks, CPU phases,
// energy) runs on simulated time: components schedule events on a shared
// Simulator, which executes them in timestamp order (FIFO among equal
// timestamps).  Single-threaded by design -- determinism is a feature; the
// "parallelism" being modeled (striped reads, concurrent flows) is expressed
// as interleaved events, exactly as in classical DES engines.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.hpp"

namespace ada::sim {

/// Simulated time in seconds.
using SimTime = double;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }

  /// Schedule `fn` at absolute simulated time `t` (>= now).
  void schedule_at(SimTime t, std::function<void()> fn);

  /// Schedule `fn` after `dt` seconds of simulated time (dt >= 0).
  void schedule_after(SimTime dt, std::function<void()> fn) {
    schedule_at(now_ + dt, std::move(fn));
  }

  /// Run until the event queue drains.
  void run();

  /// Run until the queue drains or simulated time would exceed `deadline`;
  /// returns true if the queue drained.
  bool run_until(SimTime deadline);

  /// Run until `predicate()` turns true (checked after every event) or the
  /// queue drains; returns true if the predicate was satisfied.
  bool run_while_pending(const std::function<bool()>& predicate);

  std::size_t pending_events() const noexcept { return queue_.size(); }
  std::uint64_t executed_events() const noexcept { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t sequence;  // FIFO tie-break
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  void execute_next();
  std::uint32_t trace_lane();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
  std::uint32_t trace_lane_ = 0;  // lazily registered event-recorder lane
};

}  // namespace ada::sim
