// FCFS resources: single-server queues for metadata services and CPU cores.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "obs/events.hpp"
#include "sim/simulator.hpp"

namespace ada::sim {

/// A first-come-first-served server: requests are serialized, each holding
/// the server for its service time.  Used for PVFS metadata servers and for
/// single-core CPU phases.
class FcfsResource {
 public:
  FcfsResource(Simulator& simulator, std::string name)
      : simulator_(simulator), name_(std::move(name)) {}

  /// Enqueue a request needing `service_time` seconds; `on_done` fires when
  /// service completes.
  void submit(SimTime service_time, std::function<void()> on_done);

  const std::string& name() const noexcept { return name_; }
  std::size_t queue_length() const noexcept { return queue_.size(); }
  bool busy() const noexcept { return busy_; }

  /// Total time the server has spent serving (utilization numerator).
  double busy_time() const noexcept { return busy_time_; }
  std::uint64_t completed() const noexcept { return completed_; }

 private:
  struct Request {
    SimTime service_time;
    std::function<void()> on_done;
    obs::TraceContext ctx;  // submitter's trace, replayed when service runs
  };

  void start_next();
  std::uint32_t trace_lane();

  Simulator& simulator_;
  std::string name_;
  std::deque<Request> queue_;
  bool busy_ = false;
  double busy_time_ = 0.0;
  std::uint64_t completed_ = 0;
  std::uint32_t trace_lane_ = 0;  // lazily registered event-recorder lane
};

}  // namespace ada::sim
