#include "sim/simulator.hpp"

#include "obs/events.hpp"
#include "obs/telemetry.hpp"

namespace ada::sim {

void Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  ADA_CHECK(t >= now_);
  ADA_CHECK(fn != nullptr);
  queue_.push(Event{t, next_sequence_++, std::move(fn)});
}

std::uint32_t Simulator::trace_lane() {
  if (trace_lane_ == 0) trace_lane_ = obs::register_lane("sim.engine");
  return trace_lane_;
}

void Simulator::execute_next() {
  // priority_queue::top() is const; the function object must be moved out
  // before pop, so const_cast on the (logically owned) top element.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.time;
  // Virtual time advanced: give the telemetry sampler a chance to emit a
  // "sim"-clock sample, so virtual-lane benches get timelines too.
  obs::telemetry_sim_tick(now_);
  ++executed_;
  event.fn();
}

void Simulator::run() {
  const std::uint64_t span = obs::trace_enabled()
                                 ? obs::sim_begin(trace_lane(), "sim.run", now_,
                                                  obs::current_context(), pending_events())
                                 : 0;
  while (!queue_.empty()) execute_next();
  obs::sim_end(trace_lane_, "sim.run", now_, span, obs::current_context());
}

bool Simulator::run_until(SimTime deadline) {
  const std::uint64_t span = obs::trace_enabled()
                                 ? obs::sim_begin(trace_lane(), "sim.run_until", now_,
                                                  obs::current_context(), pending_events())
                                 : 0;
  bool drained = true;
  while (!queue_.empty()) {
    if (queue_.top().time > deadline) {
      now_ = deadline;
      drained = false;
      break;
    }
    execute_next();
  }
  obs::sim_end(trace_lane_, "sim.run_until", now_, span, obs::current_context());
  return drained;
}

bool Simulator::run_while_pending(const std::function<bool()>& predicate) {
  const std::uint64_t span = obs::trace_enabled()
                                 ? obs::sim_begin(trace_lane(), "sim.run_while_pending", now_,
                                                  obs::current_context(), pending_events())
                                 : 0;
  bool satisfied = predicate();
  while (!satisfied && !queue_.empty()) {
    execute_next();
    satisfied = predicate();
  }
  obs::sim_end(trace_lane_, "sim.run_while_pending", now_, span, obs::current_context());
  return satisfied;
}

}  // namespace ada::sim
