#include "sim/simulator.hpp"

namespace ada::sim {

void Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  ADA_CHECK(t >= now_);
  ADA_CHECK(fn != nullptr);
  queue_.push(Event{t, next_sequence_++, std::move(fn)});
}

void Simulator::execute_next() {
  // priority_queue::top() is const; the function object must be moved out
  // before pop, so const_cast on the (logically owned) top element.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.time;
  ++executed_;
  event.fn();
}

void Simulator::run() {
  while (!queue_.empty()) execute_next();
}

bool Simulator::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    if (queue_.top().time > deadline) {
      now_ = deadline;
      return false;
    }
    execute_next();
  }
  return true;
}

bool Simulator::run_while_pending(const std::function<bool()>& predicate) {
  if (predicate()) return true;
  while (!queue_.empty()) {
    execute_next();
    if (predicate()) return true;
  }
  return false;
}

}  // namespace ada::sim
