#include "sim/resource.hpp"

namespace ada::sim {

void FcfsResource::submit(SimTime service_time, std::function<void()> on_done) {
  ADA_CHECK(service_time >= 0.0);
  queue_.push_back(Request{service_time, std::move(on_done)});
  if (!busy_) start_next();
}

void FcfsResource::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Request request = std::move(queue_.front());
  queue_.pop_front();
  busy_time_ += request.service_time;
  simulator_.schedule_after(request.service_time, [this, fn = std::move(request.on_done)]() {
    ++completed_;
    if (fn) fn();
    start_next();
  });
}

}  // namespace ada::sim
