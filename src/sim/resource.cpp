#include "sim/resource.hpp"

namespace ada::sim {

std::uint32_t FcfsResource::trace_lane() {
  if (trace_lane_ == 0) trace_lane_ = obs::register_lane(name_);
  return trace_lane_;
}

void FcfsResource::submit(SimTime service_time, std::function<void()> on_done) {
  ADA_CHECK(service_time >= 0.0);
  Request request{service_time, std::move(on_done), obs::TraceContext{}};
  if (obs::trace_enabled()) {
    // Requests carry the submitter's trace so the serve span -- which may
    // start much later, after the queue drains -- still joins that trace.
    request.ctx = obs::current_context();
    obs::sim_counter(trace_lane(), "queue_length", simulator_.now(), queue_.size() + 1);
  }
  queue_.push_back(std::move(request));
  if (!busy_) start_next();
}

void FcfsResource::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Request request = std::move(queue_.front());
  queue_.pop_front();
  busy_time_ += request.service_time;
  const std::uint64_t span =
      obs::trace_enabled()
          ? obs::sim_begin(trace_lane(), "serve", simulator_.now(), request.ctx)
          : 0;
  simulator_.schedule_after(
      request.service_time, [this, span, ctx = request.ctx, fn = std::move(request.on_done)]() {
        obs::sim_end(trace_lane_, "serve", simulator_.now(), span, ctx);
        ++completed_;
        if (fn) fn();
        start_next();
      });
}

}  // namespace ada::sim
