// Fluid-flow network with max-min fair bandwidth sharing.
//
// Models concurrent data transfers (striped PVFS reads, multi-client
// traffic) the way fluid network simulators do: each flow follows a path of
// capacitated links; at any instant, active flows receive their max-min fair
// rates (progressive filling); the network advances piecewise-linearly
// between flow arrivals/completions.  This captures the two effects the
// paper's cluster numbers depend on -- aggregate bandwidth from parallel
// storage nodes, and the client NIC as the convergence bottleneck -- without
// packet-level detail.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "sim/simulator.hpp"

namespace ada::sim {

using LinkId = std::uint32_t;
using FlowId = std::uint64_t;

class FlowNetwork {
 public:
  explicit FlowNetwork(Simulator& simulator) : simulator_(simulator) {}

  /// Create a link with the given capacity (bytes/second).
  LinkId add_link(std::string name, double capacity_bytes_per_s);

  double link_capacity(LinkId id) const;
  const std::string& link_name(LinkId id) const;
  std::size_t link_count() const noexcept { return links_.size(); }

  /// Start a flow of `bytes` across `path`; `on_complete` fires (via the
  /// simulator) when the last byte arrives.  Zero-byte flows complete at the
  /// current time.  Returns the flow id.
  FlowId start_flow(std::vector<LinkId> path, double bytes, std::function<void()> on_complete);

  /// Instantaneous max-min fair rate of an active flow (bytes/second).
  /// Returns 0 for completed/unknown flows.
  double current_rate(FlowId id) const;

  std::size_t active_flows() const noexcept { return flows_.size(); }

  /// Total bytes ever injected (for conservation checks in tests).
  double total_bytes_started() const noexcept { return total_bytes_started_; }
  double total_bytes_delivered() const noexcept { return total_bytes_delivered_; }

 private:
  struct Link {
    std::string name;
    double capacity;
  };
  struct Flow {
    FlowId id;
    std::vector<LinkId> path;
    double remaining;
    double rate = 0.0;
    std::function<void()> on_complete;
  };

  /// Integrate progress to `now`, recompute fair rates, schedule the next
  /// completion event.
  void reschedule();
  void advance_to(SimTime now);
  void recompute_rates();
  void on_timer(std::uint64_t generation);

  Simulator& simulator_;
  std::vector<Link> links_;
  std::vector<Flow> flows_;
  SimTime last_update_ = 0.0;
  std::uint64_t timer_generation_ = 0;
  FlowId next_flow_id_ = 1;
  double total_bytes_started_ = 0.0;
  double total_bytes_delivered_ = 0.0;
};

}  // namespace ada::sim
