// Cluster fabric: an InfiniBand-like switched network over the flow model.
//
// Every node gets a TX and an RX link (its NIC directions); a shared
// backplane link models the switch.  A transfer from node A to node B is a
// flow across [A.tx, backplane, B.rx], so concurrent transfers contend
// exactly where real ones do: at source NICs, at the switch, and at the
// destination NIC (the convergence bottleneck for striped reads).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/flow_network.hpp"

namespace ada::net {

using NodeId = std::uint32_t;

/// Fabric performance envelope.
struct FabricSpec {
  double nic_bandwidth = 4e9;        // bytes/s per direction (IB QDR-class)
  double backplane_bandwidth = 4e10; // switch capacity
  double base_latency = 2e-6;        // per-transfer setup latency, seconds

  static FabricSpec infiniband_qdr() { return FabricSpec{}; }
};

class Fabric {
 public:
  /// Build a fabric over `node_count` nodes with its own FlowNetwork links.
  Fabric(sim::Simulator& simulator, sim::FlowNetwork& network, FabricSpec spec,
         std::uint32_t node_count);

  std::uint32_t node_count() const noexcept { return static_cast<std::uint32_t>(tx_.size()); }
  const FabricSpec& spec() const noexcept { return spec_; }

  sim::FlowNetwork& network() noexcept { return network_; }

  /// Flow path for a transfer src -> dst (usable as a prefix/suffix of a
  /// larger path that includes disk links).
  std::vector<sim::LinkId> path(NodeId src, NodeId dst) const;

  /// Start a transfer; `on_complete` fires when the last byte lands.
  sim::FlowId transfer(NodeId src, NodeId dst, double bytes, std::function<void()> on_complete);

  sim::LinkId tx_link(NodeId node) const { return tx_.at(node); }
  sim::LinkId rx_link(NodeId node) const { return rx_.at(node); }
  sim::LinkId backplane() const noexcept { return backplane_; }

 private:
  std::uint32_t trace_lane(NodeId src);

  sim::Simulator& simulator_;
  sim::FlowNetwork& network_;
  FabricSpec spec_;
  std::vector<sim::LinkId> tx_;
  std::vector<sim::LinkId> rx_;
  sim::LinkId backplane_;
  std::vector<std::uint32_t> trace_lanes_;  // per-source-node, lazily registered
};

}  // namespace ada::net
