#include "net/fabric.hpp"

#include "obs/events.hpp"

namespace ada::net {

Fabric::Fabric(sim::Simulator& simulator, sim::FlowNetwork& network, FabricSpec spec,
               std::uint32_t node_count)
    : simulator_(simulator), network_(network), spec_(spec) {
  ADA_CHECK(node_count > 0);
  backplane_ = network_.add_link("switch", spec_.backplane_bandwidth);
  tx_.reserve(node_count);
  rx_.reserve(node_count);
  for (std::uint32_t n = 0; n < node_count; ++n) {
    tx_.push_back(network_.add_link("node" + std::to_string(n) + ".tx", spec_.nic_bandwidth));
    rx_.push_back(network_.add_link("node" + std::to_string(n) + ".rx", spec_.nic_bandwidth));
  }
  trace_lanes_.assign(node_count, 0);
}

std::uint32_t Fabric::trace_lane(NodeId src) {
  std::uint32_t& lane = trace_lanes_.at(src);
  if (lane == 0) lane = obs::register_lane("fabric.node" + std::to_string(src) + ".tx");
  return lane;
}

std::vector<sim::LinkId> Fabric::path(NodeId src, NodeId dst) const {
  ADA_CHECK(src < tx_.size() && dst < rx_.size());
  if (src == dst) return {};  // local move: no network traversal
  return {tx_[src], backplane_, rx_[dst]};
}

sim::FlowId Fabric::transfer(NodeId src, NodeId dst, double bytes,
                             std::function<void()> on_complete) {
  // Setup latency is modeled as a deferred flow start.
  auto route = path(src, dst);
  // The transfer span covers setup latency plus flow time on the source
  // node's lane; the submitter's context ties it to the requesting trace.
  std::uint64_t span = 0;
  std::uint32_t lane = 0;
  obs::TraceContext ctx;
  if (obs::trace_enabled()) {
    ctx = obs::current_context();
    lane = trace_lane(src);
    span = obs::sim_begin(lane, "xfer", simulator_.now(), ctx,
                          static_cast<std::uint64_t>(bytes));
  }
  auto done = [this, lane, span, ctx, on_complete = std::move(on_complete)]() {
    obs::sim_end(lane, "xfer", simulator_.now(), span, ctx);
    if (on_complete) on_complete();
  };
  // For zero-latency correctness the flow itself carries the bytes; the base
  // latency shifts its start.
  sim::FlowId placeholder = 0;
  if (spec_.base_latency <= 0.0) {
    return network_.start_flow(std::move(route), bytes, std::move(done));
  }
  simulator_.schedule_after(spec_.base_latency,
                            [this, route = std::move(route), bytes,
                             done = std::move(done)]() mutable {
                              network_.start_flow(std::move(route), bytes, std::move(done));
                            });
  return placeholder;
}

}  // namespace ada::net
