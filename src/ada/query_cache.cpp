#include "ada/query_cache.hpp"

#include <functional>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/warn.hpp"

namespace ada::core {

namespace {

std::string make_key(const std::string& logical_name, const Tag& tag) {
  std::string key;
  key.reserve(logical_name.size() + 1 + tag.size());
  key += logical_name;
  key += '\0';
  key += tag;
  return key;
}

}  // namespace

QueryCache::QueryCache(std::uint64_t budget_bytes, std::size_t shard_count)
    : budget_(budget_bytes) {
  if (shard_count == 0) shard_count = 1;
  shard_budget_ = budget_ / shard_count;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) shards_.push_back(std::make_unique<Shard>());
}

QueryCache::Shard& QueryCache::shard_of(const std::string& logical_name) {
  return *shards_[std::hash<std::string>{}(logical_name) % shards_.size()];
}

void QueryCache::publish_bytes() const {
  if (!obs::enabled()) return;
  static obs::Gauge& gauge = obs::Registry::global().gauge("cache.bytes");
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->bytes;
  }
  gauge.set(static_cast<double>(total));
}

QueryCache::Image QueryCache::locked_lookup(Shard& shard, const std::string& key,
                                            std::uint64_t generation, bool* stale_drop) {
  const auto it = shard.by_key.find(key);
  if (it == shard.by_key.end()) return nullptr;
  if (it->second->generation == generation) {
    // Hit: move to the front of the LRU and hand out a reference.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->image;
  }
  // The container mutated since this entry was filled: the bytes may no
  // longer match disk.  Drop, report a miss.
  *stale_drop = true;
  shard.bytes -= it->second->image->size();
  shard.lru.erase(it->second);
  shard.by_key.erase(it);
  return nullptr;
}

QueryCache::Image QueryCache::lookup(const std::string& logical_name, const Tag& tag,
                                     std::uint64_t generation) {
  Shard& shard = shard_of(logical_name);
  Image image;
  bool stale = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    image = locked_lookup(shard, make_key(logical_name, tag), generation, &stale);
  }
  if (image != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    ADA_OBS_COUNT("cache.hits", 1);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    ADA_OBS_COUNT("cache.misses", 1);
    if (stale) {
      invalidations_.fetch_add(1, std::memory_order_relaxed);
      ADA_OBS_COUNT("cache.invalidations", 1);
      publish_bytes();
    }
  }
  return image;
}

QueryCache::Image QueryCache::lookup_or_fill(const std::string& logical_name, const Tag& tag,
                                             std::uint64_t generation, FillGuard* guard) {
  const std::string key = make_key(logical_name, tag);
  Shard& shard = shard_of(logical_name);
  std::uint64_t stale_drops = 0;
  Image image;
  bool leader = false;
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    for (;;) {
      bool stale = false;
      image = locked_lookup(shard, key, generation, &stale);
      if (stale) ++stale_drops;
      if (image != nullptr) break;
      const auto it = shard.fills.find(key);
      if (it != shard.fills.end() && it->second->generation == generation) {
        // Another caller is already reading these bytes: wait for its
        // guard to resolve instead of paying a duplicate backend read,
        // then re-check (hit on its insert, or take over leadership).
        const std::shared_ptr<Fill> fill = it->second;
        fill->cv.wait(lock, [&] { return fill->resolved; });
        continue;
      }
      // True miss: claim sole leadership for (key, generation).  A flight
      // registered under an older generation is stale -- displace it from
      // the directory (its own guard still wakes its waiters) and fill
      // under the generation we observed.
      auto fill = std::make_shared<Fill>();
      fill->generation = generation;
      shard.fills[key] = fill;
      *guard = FillGuard(this, &shard, key, std::move(fill));
      leader = true;
      break;
    }
  }
  if (image != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    ADA_OBS_COUNT("cache.hits", 1);
  } else if (leader) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    ADA_OBS_COUNT("cache.misses", 1);
  }
  if (stale_drops != 0) {
    invalidations_.fetch_add(stale_drops, std::memory_order_relaxed);
    ADA_OBS_COUNT("cache.invalidations", stale_drops);
    publish_bytes();
  }
  return image;
}

void QueryCache::resolve_fill(Shard& shard, const std::string& key,
                              const std::shared_ptr<Fill>& fill) {
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.fills.find(key);
    if (it != shard.fills.end() && it->second == fill) shard.fills.erase(it);
    fill->resolved = true;
  }
  fill->cv.notify_all();
}

void QueryCache::FillGuard::reset() {
  if (fill_ != nullptr) cache_->resolve_fill(*shard_, key_, fill_);
  fill_ = nullptr;
  cache_ = nullptr;
  shard_ = nullptr;
  key_.clear();
}

void QueryCache::evict_for(Shard& shard, std::uint64_t needed) {
  while (!shard.lru.empty() && shard.bytes + needed > shard_budget_) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.image->size();
    shard.by_key.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    ADA_OBS_COUNT("cache.evictions", 1);
  }
}

QueryCache::Image QueryCache::insert(const std::string& logical_name, const Tag& tag,
                                     std::uint64_t generation, std::vector<std::uint8_t> bytes) {
  const std::uint64_t size = bytes.size();
  Image image = std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
  if (size > shard_budget_) {
    // Would evict the whole shard for one entry; serve it uncached instead.
    ADA_OBS_COUNT("cache.bypass", 1);
    obs::warn(obs::WarnSeverity::kWarn, "cache-bypass",
              make_key(logical_name, tag) + ": subset of " + std::to_string(size) +
                  " bytes exceeds the per-shard budget of " +
                  std::to_string(shard_budget_) + " bytes");
    return image;
  }
  Entry entry;
  entry.key = make_key(logical_name, tag);
  entry.logical_name = logical_name;
  entry.generation = generation;
  entry.image = std::move(image);
  Shard& shard = shard_of(logical_name);
  bool duplicate = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.by_key.find(entry.key);
    if (it != shard.by_key.end()) {
      if (it->second->generation == generation) {
        // A concurrent cold miss on the same key won the race: this fill's
        // backend read was pure duplicate work.  Keep (and return) the
        // incumbent image so every caller shares one allocation.
        duplicate = true;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        entry.image = it->second->image;
      } else {
        // Refill after invalidation (or a newer-generation fill).  Readers
        // of the old image keep their reference.
        shard.bytes -= it->second->image->size();
        shard.lru.erase(it->second);
        shard.by_key.erase(it);
      }
    }
    if (!duplicate) {
      evict_for(shard, size);
      shard.lru.push_front(entry);
      shard.by_key[shard.lru.front().key] = shard.lru.begin();
      shard.bytes += size;
    }
  }
  if (duplicate) {
    duplicate_fills_.fetch_add(1, std::memory_order_relaxed);
    ADA_OBS_COUNT("cache.duplicate_fills", 1);
  }
  publish_bytes();
  return entry.image;
}

void QueryCache::invalidate(const std::string& logical_name) {
  Shard& shard = shard_of(logical_name);
  std::uint64_t dropped = 0;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->logical_name == logical_name) {
        shard.bytes -= it->image->size();
        shard.by_key.erase(it->key);
        it = shard.lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  if (dropped != 0) {
    invalidations_.fetch_add(dropped, std::memory_order_relaxed);
    ADA_OBS_COUNT("cache.invalidations", dropped);
    publish_bytes();
  }
}

void QueryCache::clear() {
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->by_key.clear();
    shard->bytes = 0;
  }
  publish_bytes();
}

QueryCache::Stats QueryCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.duplicate_fills = duplicate_fills_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    stats.bytes += shard->bytes;
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace ada::core
