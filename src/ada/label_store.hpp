// Label-file persistence (Algorithm 1, line 27-28: "Store the labeler to a
// file named label_file for later I/O reference").
//
// Text format, one tag per line:
//
//   # ada label file v1
//   atoms 43520
//   p 0-18499
//   m 18500-43519
//
// Ranges use the Selection text form (inclusive, comma separated).  The
// labeler keeps tags *separate from the data subsets* (paper Section 3.2):
// nothing is injected into any subset.
#pragma once

#include <string>

#include "ada/categorizer.hpp"
#include "common/result.hpp"

namespace ada::core {

/// Serialize a label map to label-file text.
std::string encode_label_file(const LabelMap& labels);

/// Parse label-file text.
Result<LabelMap> decode_label_file(const std::string& text);

}  // namespace ada::core
