#include "ada/middleware.hpp"

#include <algorithm>

#include "ada/label_store.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ada::core {

Ada::Ada(plfs::PlfsMount mount, AdaConfig config)
    : mount_(std::move(mount)), config_(std::move(config)), dispatcher_(mount_, config_.placement) {}

bool Ada::should_intercept(const std::string& path, const std::string& app_id) const {
  const std::string app = to_upper(app_id);
  const bool app_matches =
      std::any_of(config_.target_apps.begin(), config_.target_apps.end(),
                  [&](const std::string& target) { return to_upper(target) == app; });
  if (!app_matches) return false;
  const auto dot = path.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string extension = to_upper(path.substr(dot));
  return std::any_of(config_.target_extensions.begin(), config_.target_extensions.end(),
                     [&](const std::string& e) { return to_upper(e) == extension; });
}

Result<IngestReport> Ada::ingest(const chem::System& structure,
                                 std::span<const std::uint8_t> xtc_image,
                                 const std::string& logical_name) {
  return ingest_with_labels(categorize_protein_misc(structure), xtc_image, logical_name);
}

Result<IngestReport> Ada::ingest_with_labels(const LabelMap& labels,
                                             std::span<const std::uint8_t> xtc_image,
                                             const std::string& logical_name) {
  const obs::ScopedTimer span("ingest");
  const obs::TraceSpan trace("ingest", logical_name);
  ADA_OBS_COUNT("ingest.calls", 1);
  ADA_OBS_COUNT("ingest.bytes_in", xtc_image.size());
  obs::trace_counter("ingest.bytes_in", xtc_image.size());
  if (!labels.is_partition()) {
    return invalid_argument("label map does not partition the atom range");
  }
  DataPreProcessor preprocessor(labels);
  IngestReport report;
  report.logical_name = logical_name;
  ADA_ASSIGN_OR_RETURN(const auto subsets, preprocessor.split(xtc_image, &report.preprocess));

  ADA_RETURN_IF_ERROR(dispatcher_.dispatch(logical_name, subsets));
  for (const auto& [tag, bytes] : subsets) {
    report.backend_of_tag[tag] = dispatcher_.policy().backend_for(tag);
  }

  // Persist the label file inside the container (reserved label) so that
  // later sessions -- and the indexer -- can resolve tags without the .pdb.
  const std::string label_text = encode_label_file(labels);
  ADA_RETURN_IF_ERROR(
      dispatcher_
          .dispatch_one(logical_name, kLabelFileTag,
                        std::span(reinterpret_cast<const std::uint8_t*>(label_text.data()),
                                  label_text.size()))
          .status());

  if (config_.keep_original) {
    ADA_RETURN_IF_ERROR(dispatcher_.dispatch_one(logical_name, kOriginalTag, xtc_image).status());
  }
  return report;
}

std::vector<Result<IngestReport>> Ada::ingest_batch(const chem::System& structure,
                                                    const std::vector<Phase>& phases,
                                                    unsigned threads) {
  // The label map is shared read-only across phases (one structure).
  const LabelMap labels = categorize_protein_misc(structure);
  std::vector<Result<IngestReport>> results(
      phases.size(), Result<IngestReport>(internal_error("not executed")));

  // Duplicate names would race on the same container: reject up front.
  for (std::size_t i = 0; i < phases.size(); ++i) {
    for (std::size_t j = i + 1; j < phases.size(); ++j) {
      if (phases[i].logical_name == phases[j].logical_name) {
        const auto error =
            invalid_argument("duplicate phase name: " + phases[i].logical_name);
        for (auto& r : results) r = error;
        return results;
      }
    }
  }

  std::vector<std::function<void()>> tasks;
  tasks.reserve(phases.size());
  for (std::size_t i = 0; i < phases.size(); ++i) {
    tasks.push_back([this, &labels, &phases, &results, i] {
      // Each task touches only its own container directory; the mount's
      // file operations on distinct containers are independent.
      results[i] = ingest_with_labels(labels, phases[i].xtc_image, phases[i].logical_name);
    });
  }
  parallel_run(std::move(tasks), threads);
  return results;
}

Result<IngestStream> Ada::begin_stream(const LabelMap& labels, const std::string& logical_name,
                                       std::uint32_t chunk_frames) {
  return IngestStream::begin(dispatcher_, labels, logical_name, chunk_frames);
}

Result<std::vector<std::uint8_t>> Ada::query(const std::string& logical_name,
                                             const Tag& tag) const {
  const obs::ScopedTimer span("query");
  const obs::TraceSpan trace("query", tag);
  ADA_OBS_COUNT("query.calls", 1);
  if (tag == kLabelFileTag || tag == kOriginalTag) {
    return invalid_argument("tag '" + tag + "' is reserved");
  }
  auto subset = [&] {
    const obs::ScopedTimer retrieve_span("retrieve");
    const obs::TraceSpan retrieve_trace("retrieve", tag);
    return IoRetriever(mount_).retrieve(logical_name, tag);
  }();
  if (subset.is_ok() && obs::enabled()) {
    obs::Registry& registry = obs::Registry::global();
    registry.counter("query.bytes_out").add(subset.value().size());
    registry.counter("query.bytes_out." + tag).add(subset.value().size());
  }
  return subset;
}

Result<LabelMap> Ada::labels(const std::string& logical_name) const {
  ADA_ASSIGN_OR_RETURN(const auto bytes, IoRetriever(mount_).retrieve(logical_name, kLabelFileTag));
  return decode_label_file(std::string(bytes.begin(), bytes.end()));
}

Result<std::vector<Tag>> Ada::tags(const std::string& logical_name) const {
  return Indexer(mount_).tags(logical_name);
}

Result<std::uint64_t> Ada::subset_bytes(const std::string& logical_name, const Tag& tag) const {
  return mount_.label_size(logical_name, tag);
}

}  // namespace ada::core
