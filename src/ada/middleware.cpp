#include "ada/middleware.hpp"

#include <algorithm>
#include <numeric>

#include "ada/label_store.hpp"
#include "common/binary_io.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "formats/raw_traj.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/warn.hpp"

namespace ada::core {

Ada::Ada(plfs::PlfsMount mount, AdaConfig config)
    : mount_(std::move(mount)),
      config_(std::move(config)),
      dispatcher_(mount_, config_.placement, config_.frame_tables) {
  target_apps_upper_.reserve(config_.target_apps.size());
  for (const std::string& app : config_.target_apps) target_apps_upper_.push_back(to_upper(app));
  target_extensions_upper_.reserve(config_.target_extensions.size());
  for (const std::string& extension : config_.target_extensions) {
    target_extensions_upper_.push_back(to_upper(extension));
  }
  if (config_.cache_bytes != 0) cache_ = std::make_unique<QueryCache>(config_.cache_bytes);
}

bool Ada::should_intercept(const std::string& path, const std::string& app_id) const {
  const std::string app = to_upper(app_id);
  if (std::find(target_apps_upper_.begin(), target_apps_upper_.end(), app) ==
      target_apps_upper_.end()) {
    return false;
  }
  // Extension of the basename only: "/runs.2026/traj" has none, and the dot
  // in the directory component must never be parsed as one.
  const std::string extension = to_upper(path_extension(path));
  if (extension.empty()) return false;
  return std::find(target_extensions_upper_.begin(), target_extensions_upper_.end(), extension) !=
         target_extensions_upper_.end();
}

Result<IngestReport> Ada::ingest(const chem::System& structure,
                                 std::span<const std::uint8_t> xtc_image,
                                 const std::string& logical_name) {
  return ingest_with_labels(categorize_protein_misc(structure), xtc_image, logical_name);
}

Result<IngestReport> Ada::ingest_with_labels(const LabelMap& labels,
                                             std::span<const std::uint8_t> xtc_image,
                                             const std::string& logical_name) {
  const obs::ScopedTimer span("ingest");
  const obs::TraceSpan trace("ingest", logical_name);
  ADA_OBS_COUNT("ingest.calls", 1);
  ADA_OBS_COUNT("ingest.bytes_in", xtc_image.size());
  obs::trace_counter("ingest.bytes_in", xtc_image.size());
  if (!labels.is_partition()) {
    return invalid_argument("label map does not partition the atom range");
  }

  // Re-ingesting a live dataset must never append duplicate subsets (and a
  // second label file) onto its container.  Without overwrite, fail up front
  // -- before any decompression work; with it, stage the replacement in a
  // sibling container and swap it in atomically once fully written, so
  // concurrent queries see the old dataset or the new one, never a mix.
  std::string target = logical_name;
  const bool replacing = mount_.container_exists(logical_name);
  if (replacing) {
    if (!config_.overwrite) {
      return already_exists("dataset " + logical_name +
                            " already exists (set AdaConfig::overwrite to replace it)");
    }
    target = logical_name + ".overwrite.tmp";
    if (mount_.container_exists(target)) {
      ADA_RETURN_IF_ERROR(mount_.remove_container(target));  // crash leftover
    }
  }

  auto result = ingest_into(labels, xtc_image, target);
  if (replacing) {
    if (!result.is_ok()) {
      if (mount_.container_exists(target)) (void)mount_.remove_container(target);
      return result;
    }
    result.value().logical_name = logical_name;  // the dataset, not the staging name
    const Status swapped = mount_.replace_container(target, logical_name);
    if (!swapped.is_ok()) {
      if (mount_.container_exists(target)) (void)mount_.remove_container(target);
      return swapped.error();
    }
  }
  // The mutation generation already fences stale entries; the explicit drop
  // frees their memory immediately.
  if (result.is_ok() && cache_ != nullptr) cache_->invalidate(logical_name);
  return result;
}

Result<IngestReport> Ada::ingest_into(const LabelMap& labels,
                                      std::span<const std::uint8_t> xtc_image,
                                      const std::string& container_name) {
  DataPreProcessor preprocessor(labels);
  IngestReport report;
  report.logical_name = container_name;
  ADA_ASSIGN_OR_RETURN(const auto subsets,
                       preprocessor.split(xtc_image, &report.preprocess, config_.threads));

  ADA_RETURN_IF_ERROR(dispatcher_.dispatch(container_name, subsets));
  for (const auto& [tag, bytes] : subsets) {
    report.backend_of_tag[tag] = dispatcher_.policy().backend_for(tag);
  }

  // Persist the label file inside the container (reserved label) so that
  // later sessions -- and the indexer -- can resolve tags without the .pdb.
  const std::string label_text = encode_label_file(labels);
  ADA_RETURN_IF_ERROR(
      dispatcher_
          .dispatch_one(container_name, kLabelFileTag,
                        std::span(reinterpret_cast<const std::uint8_t*>(label_text.data()),
                                  label_text.size()))
          .status());

  if (config_.keep_original) {
    ADA_RETURN_IF_ERROR(
        dispatcher_.dispatch_one(container_name, kOriginalTag, xtc_image).status());
  }
  return report;
}

std::vector<Result<IngestReport>> Ada::ingest_batch(const chem::System& structure,
                                                    const std::vector<Phase>& phases,
                                                    unsigned threads) {
  // The label map is shared read-only across phases (one structure).
  const LabelMap labels = categorize_protein_misc(structure);
  std::vector<Result<IngestReport>> results(
      phases.size(), Result<IngestReport>(internal_error("not executed")));

  // Duplicate names would race on the same container: reject up front.
  // Sort a name index so the check is O(n log n), not the n^2 nested scan.
  std::vector<std::size_t> by_name(phases.size());
  std::iota(by_name.begin(), by_name.end(), std::size_t{0});
  std::sort(by_name.begin(), by_name.end(), [&](std::size_t a, std::size_t b) {
    return phases[a].logical_name < phases[b].logical_name;
  });
  for (std::size_t k = 1; k < by_name.size(); ++k) {
    if (phases[by_name[k - 1]].logical_name == phases[by_name[k]].logical_name) {
      const auto error =
          invalid_argument("duplicate phase name: " + phases[by_name[k]].logical_name);
      for (auto& r : results) r = error;
      return results;
    }
  }

  std::vector<std::function<void()>> tasks;
  tasks.reserve(phases.size());
  for (std::size_t i = 0; i < phases.size(); ++i) {
    tasks.push_back([this, &labels, &phases, &results, i] {
      // Each task touches only its own container directory; the mount's
      // file operations on distinct containers are independent.
      results[i] = ingest_with_labels(labels, phases[i].xtc_image, phases[i].logical_name);
    });
  }
  parallel_run(std::move(tasks), threads != 0 ? threads : config_.threads);
  return results;
}

Result<IngestStream> Ada::begin_stream(const LabelMap& labels, const std::string& logical_name,
                                       std::uint32_t chunk_frames) {
  return IngestStream::begin(dispatcher_, labels, logical_name, chunk_frames, config_.threads,
                             config_.retain_bytes);
}

void Ada::count_query_bytes(const Tag& tag, std::size_t bytes) const {
  if (!obs::enabled()) return;
  static obs::Counter& total = obs::Registry::global().counter("query.bytes_out");
  total.add(bytes);
  obs::Counter* per_tag = nullptr;
  {
    // Registry handles are stable for the life of the process, so each
    // tag pays the "query.bytes_out.<tag>" string build exactly once.
    const std::lock_guard<std::mutex> lock(query_counter_mutex_);
    auto it = query_bytes_counters_.find(tag);
    if (it == query_bytes_counters_.end()) {
      it = query_bytes_counters_
               .emplace(tag, &obs::Registry::global().counter("query.bytes_out." + tag))
               .first;
    }
    per_tag = it->second;
  }
  per_tag->add(bytes);
}

Result<std::vector<std::uint8_t>> Ada::query(const std::string& logical_name,
                                             const Tag& tag) const {
  const obs::ScopedTimer span("query");
  const obs::TraceSpan trace("query", tag);
  ADA_OBS_COUNT("query.calls", 1);
  if (tag == kLabelFileTag || tag == kOriginalTag) {
    return invalid_argument("tag '" + tag + "' is reserved");
  }
  // The generation is observed BEFORE any read: a write racing the retrieve
  // below leaves the filled entry detectably stale instead of poisoning
  // later lookups with bytes from the middle of a mutation.  The fill guard
  // makes the miss single-flight: concurrent cold misses of the same key
  // wait for this read instead of each paying their own (it resolves after
  // the insert below, or on the error return).
  std::uint64_t generation = 0;
  QueryCache::FillGuard fill_guard;
  if (cache_ != nullptr) {
    generation = mount_.mutation_generation(logical_name);
    const obs::TraceSpan lookup_trace("cache_lookup", tag);
    if (const QueryCache::Image hit =
            cache_->lookup_or_fill(logical_name, tag, generation, &fill_guard)) {
      count_query_bytes(tag, hit->size());
      return *hit;  // copy out; the shared image itself stays immutable
    }
  }
  auto subset = [&] {
    const obs::ScopedTimer retrieve_span("retrieve");
    const obs::TraceSpan retrieve_trace("retrieve", tag);
    return IoRetriever(mount_, retrieve_options()).retrieve(logical_name, tag);
  }();
  if (subset.is_ok()) {
    if (cache_ != nullptr) {
      // Fill only from this CRC-verified read (IoRetriever checks every
      // extent): a faulted read errors out above and never lands here.
      const obs::TraceSpan fill_trace("cache_fill", tag);
      cache_->insert(logical_name, tag, generation, subset.value());
    }
    count_query_bytes(tag, subset.value().size());
  }
  return subset;
}

Result<QueryCache::Image> Ada::query_image(const std::string& logical_name,
                                           const Tag& tag) const {
  const obs::ScopedTimer span("query");
  const obs::TraceSpan trace("query", tag);
  ADA_OBS_COUNT("query.calls", 1);
  if (tag == kLabelFileTag || tag == kOriginalTag) {
    return invalid_argument("tag '" + tag + "' is reserved");
  }
  std::uint64_t generation = 0;
  QueryCache::FillGuard fill_guard;
  if (cache_ != nullptr) {
    generation = mount_.mutation_generation(logical_name);
    const obs::TraceSpan lookup_trace("cache_lookup", tag);
    if (QueryCache::Image hit =
            cache_->lookup_or_fill(logical_name, tag, generation, &fill_guard)) {
      count_query_bytes(tag, hit->size());
      return hit;  // shared, not copied: the whole point of this entry
    }
  }
  auto subset = [&] {
    const obs::ScopedTimer retrieve_span("retrieve");
    const obs::TraceSpan retrieve_trace("retrieve", tag);
    return IoRetriever(mount_, retrieve_options()).retrieve(logical_name, tag);
  }();
  if (!subset.is_ok()) return subset.error();
  count_query_bytes(tag, subset.value().size());
  if (cache_ != nullptr) {
    const obs::TraceSpan fill_trace("cache_fill", tag);
    // insert() returns the image now cached under the key -- the incumbent
    // if a concurrent fill won, so every racer still shares one allocation.
    return cache_->insert(logical_name, tag, generation, std::move(subset).value());
  }
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(subset).value());
}

namespace {

// Frames per cached range block: large enough to amortize per-entry cache
// bookkeeping, small enough that a sparse stride never drags whole subsets
// into the budget.
constexpr std::uint64_t kFrameBlock = 32;

// Cache-key tag for one frame block.  '\x01' cannot appear in a label (the
// label file is line-oriented text), so block entries can never collide with
// whole-subset entries; both carry the logical name, so invalidation and
// generation fencing cover them identically.
std::string block_tag(const Tag& tag, std::uint64_t block) {
  return tag + '\x01' + std::to_string(block);
}

// Cache-key tag for a *partial* frame block: the growing open-tail block of a
// live stream, or a block straddling the retention floor.  Keying on the
// frame count makes a grown tail block miss (and re-fill) instead of hitting
// the shorter cached image; floor moves bump the rewrite generation, which
// fences the rest.  '\x02', like '\x01', cannot appear in a label.
std::string partial_block_tag(const Tag& tag, std::uint64_t block, std::uint64_t frames) {
  return tag + '\x01' + std::to_string(block) + '\x02' + std::to_string(frames);
}

// True iff the extent is one canonical RawTrajWriter image -- a 16-byte
// header followed by fixed-size frames placed exactly where its frame table
// says.  `frame_bytes` accumulates the uniform frame size across extents
// (0 = not yet known).  Anything else (legacy records without tables,
// concatenated segments, lying tables) routes the query down the
// slice-the-full-subset fallback, so a malformed table can never cause an
// out-of-bounds slice.
bool canonical_extent(const DatasetLocation& location, std::uint64_t& frame_bytes) {
  if (!location.has_frame_table) return false;
  const auto& table = location.frame_offsets;
  if (table.empty()) return location.bytes == 16;  // header-only extent, zero frames
  if (table.front() != 16) return false;
  std::uint64_t span = 0;
  for (std::size_t i = 1; i < table.size(); ++i) {
    if (table[i] <= table[i - 1]) return false;
    const std::uint64_t gap = table[i] - table[i - 1];
    if (span == 0) {
      span = gap;
    } else if (gap != span) {
      return false;
    }
  }
  if (table.back() >= location.bytes) return false;
  const std::uint64_t last = location.bytes - table.back();
  if (span == 0) span = last;  // single-frame extent
  if (last != span) return false;
  if (span < 44 || (span - 44) % 12 != 0) return false;  // RAW frame shape
  if ((span - 44) / 12 > std::numeric_limits<std::uint32_t>::max()) return false;
  if (location.bytes != 16 + table.size() * span) return false;
  if (frame_bytes == 0) frame_bytes = span;
  return frame_bytes == span;
}

// The RAW header (magic | atoms | frames) of a range result.
void append_raw_header(std::vector<std::uint8_t>& out, std::uint32_t atoms,
                       std::uint32_t frames) {
  ByteWriter header;
  header.put_bytes(formats::kRawMagic);
  header.put_u32_le(atoms);
  header.put_u32_le(frames);
  const auto& bytes = header.bytes();
  out.insert(out.end(), bytes.begin(), bytes.end());
}

// Global frame indices a range selects out of `total` frames.
std::vector<std::uint64_t> select_frames(const FrameRange& range, std::uint64_t total) {
  std::vector<std::uint64_t> picked;
  const std::uint64_t limit = std::min<std::uint64_t>(range.end, total);
  for (std::uint64_t g = range.begin; g < limit; g += range.stride) picked.push_back(g);
  return picked;
}

// Fallback slicer: cut the selected frames out of a full (possibly
// concatenated) subset image.  Byte-identical to the fast path by
// construction -- both emit header + verbatim frame records.
Result<std::vector<std::uint8_t>> slice_raw_frames(std::span<const std::uint8_t> image,
                                                   const FrameRange& range) {
  ADA_ASSIGN_OR_RETURN(const auto cat, formats::RawTrajCatReader::open(image));
  ADA_ASSIGN_OR_RETURN(const auto offsets, formats::scan_raw_frame_offsets(image));
  const std::uint64_t frame_bytes = formats::raw_frame_bytes(cat.atom_count());
  const auto picked = select_frames(range, offsets.size());
  std::vector<std::uint8_t> out;
  out.reserve(16 + picked.size() * frame_bytes);
  append_raw_header(out, cat.atom_count(), static_cast<std::uint32_t>(picked.size()));
  for (const std::uint64_t g : picked) {
    if (offsets[g] + frame_bytes > image.size()) {
      return corrupt_data("frame " + std::to_string(g) + " overruns the subset image");
    }
    const auto* frame = image.data() + offsets[g];
    out.insert(out.end(), frame, frame + frame_bytes);
  }
  return out;
}

}  // namespace

Result<std::vector<std::uint8_t>> Ada::query(const std::string& logical_name, const Tag& tag,
                                             const FrameRange& range) const {
  const obs::ScopedTimer span("query");
  const obs::TraceSpan trace("query_range", tag);
  ADA_OBS_COUNT("query.calls", 1);
  ADA_OBS_COUNT("query.range.calls", 1);
  if (tag == kLabelFileTag || tag == kOriginalTag) {
    return invalid_argument("tag '" + tag + "' is reserved");
  }
  if (range.stride == 0) return invalid_argument("frame stride must be positive");

  // Fencing: frame blocks validate against the *rewrite* generation, which
  // only history-rewriting writes advance (retention, repair, overwrite).  A
  // streaming chunk flush bumps the mutation clock but not this one, so
  // sealed-prefix blocks stay hittable across flushes -- the flush extends
  // the readable prefix instead of invalidating it.  Observed BEFORE any
  // read, so a racing rewrite leaves filled blocks detectably stale.
  std::uint64_t block_generation = 0;
  if (cache_ != nullptr) block_generation = mount_.rewrite_generation(logical_name);

  ADA_ASSIGN_OR_RETURN(const auto locations, Indexer(mount_).locate(logical_name, tag));

  // Global frame numbering: streamed extents carry their own frame span
  // (frame_base, clamped to the sealed watermark by the indexer); batch
  // extents number implicitly from 0.  A mixed container, a span gap, or a
  // span/table disagreement routes to the fallback slicer.
  const bool streamed = !locations.empty() && locations.front().has_frame_base;
  const std::uint64_t base_frame = streamed ? locations.front().frame_base : 0;
  if (range.begin < base_frame) {
    return out_of_range("frame " + std::to_string(range.begin) +
                        " is below the retention floor (" + std::to_string(base_frame) + ")");
  }

  std::uint64_t frame_bytes = 0;
  std::uint64_t total_frames = base_frame;
  std::vector<std::uint64_t> first_frame(locations.size(), 0);
  bool fast = true;
  for (std::size_t i = 0; i < locations.size() && fast; ++i) {
    first_frame[i] = total_frames;
    if (locations[i].has_frame_base != streamed ||
        (streamed && (locations[i].frame_base != total_frames ||
                      locations[i].frame_count != locations[i].frame_offsets.size()))) {
      fast = false;
      break;
    }
    fast = canonical_extent(locations[i], frame_bytes);
    total_frames += locations[i].frame_offsets.size();
  }
  if (!fast || total_frames == base_frame) {
    // Fallback covers containers ingested without frame tables and any
    // non-canonical extent: fetch the whole subset (through the subset cache
    // when armed) and slice.  A zero-frame dataset also lands here -- the
    // atom count then comes from the stored RAW header, which the index
    // cannot supply.
    ADA_OBS_COUNT("query.range.fallback", 1);
    std::vector<std::uint8_t> full;
    if (cache_ != nullptr) {
      ADA_ASSIGN_OR_RETURN(full, query(logical_name, tag));
    } else {
      // With no cache to consult, the droppings this function already
      // located are the whole read plan: retrieve them directly instead of
      // walking the index a second time inside retrieve(name, tag).
      const obs::ScopedTimer retrieve_span("retrieve");
      const obs::TraceSpan retrieve_trace("retrieve", tag);
      ADA_ASSIGN_OR_RETURN(full, IoRetriever(mount_, retrieve_options())
                                     .retrieve(std::span<const DatasetLocation>(locations)));
      count_query_bytes(tag, full.size());
    }
    // The full image of a retained stream starts at the floor, not frame 0:
    // shift the selection into the image's local numbering.
    FrameRange local_range = range;
    local_range.begin = static_cast<std::uint32_t>(range.begin - base_frame);
    if (range.end != std::numeric_limits<std::uint32_t>::max()) {
      local_range.end = static_cast<std::uint32_t>(
          range.end > base_frame ? range.end - base_frame : 0);
    }
    auto sliced = slice_raw_frames(full, local_range);
    if (sliced.is_ok()) count_query_bytes(tag, sliced.value().size());
    return sliced;
  }

  const auto atoms = static_cast<std::uint32_t>((frame_bytes - 44) / 12);
  const auto picked = select_frames(range, total_frames);
  std::vector<std::uint8_t> out;
  out.reserve(16 + picked.size() * frame_bytes);
  append_raw_header(out, atoms, static_cast<std::uint32_t>(picked.size()));

  // A block's available frames, clamped to the retention floor below and the
  // sealed prefix above.  A clamped (partial) block caches under a
  // frame-count-suffixed key so a later, longer version of the same block
  // can never serve the shorter cached image.
  const auto block_bounds = [&](std::uint64_t b) {
    return std::pair<std::uint64_t, std::uint64_t>(
        std::max(b * kFrameBlock, base_frame),
        std::min((b + 1) * kFrameBlock, total_frames));
  };
  const auto block_key = [&](std::uint64_t b, std::uint64_t lo, std::uint64_t hi) {
    const bool full = lo == b * kFrameBlock && hi == (b + 1) * kFrameBlock;
    return full ? block_tag(tag, b) : partial_block_tag(tag, b, hi - lo);
  };

  // Extent images fetched this query: a run of uncached blocks reads each
  // dropping at most once.
  std::map<std::size_t, std::vector<std::uint8_t>> fetched;
  const IoRetriever retriever(mount_, retrieve_options());
  // Owning extent of global frame `g`: last extent whose first frame is
  // <= g (ties from zero-frame extents resolve to the later, owning one).
  const auto extent_of = [&](std::uint64_t g) {
    std::size_t lo = 0;
    std::size_t hi = locations.size();
    while (hi - lo > 1) {
      const std::size_t mid = (lo + hi) / 2;
      if (first_frame[mid] <= g) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  };

  // Parallel mode plans the read up front: one pass resolves which blocks
  // the cache already holds and which extents the uncached blocks touch,
  // then a single scatter-gather retrieve fetches every needed extent
  // concurrently.  The serial path keeps fetching on demand, one extent at
  // a time, exactly as before.
  // Single-flight claims for the blocks this query will fill: a concurrent
  // query touching the same block waits for our insert instead of reading
  // the same extents again.  Claims are taken in ascending block order
  // (every path walks `picked` ascending), so two queries can never wait on
  // each other's blocks in a cycle.  Each claim resolves right after its
  // block's insert lands in the main loop below (or on any error return).
  std::map<std::uint64_t, QueryCache::FillGuard> block_guards;
  std::map<std::uint64_t, QueryCache::Image> planned_blocks;
  if (retriever.options().parallel()) {
    std::vector<std::size_t> needed;  // ascending: picked and extent_of ascend
    std::uint64_t planned = std::numeric_limits<std::uint64_t>::max();
    for (const std::uint64_t g : picked) {
      const std::uint64_t b = g / kFrameBlock;
      if (b == planned) continue;
      planned = b;
      const auto [lo_frame, hi_frame] = block_bounds(b);
      QueryCache::Image hit;
      if (cache_ != nullptr) {
        hit = cache_->lookup_or_fill(logical_name, block_key(b, lo_frame, hi_frame),
                                     block_generation, &block_guards[b]);
      }
      planned_blocks.emplace(b, hit);
      if (hit != nullptr) continue;
      for (std::uint64_t f = lo_frame; f < hi_frame; ++f) {
        const std::size_t e = extent_of(f);
        if (needed.empty() || needed.back() != e) needed.push_back(e);
      }
    }
    std::vector<DatasetLocation> want;
    want.reserve(needed.size());
    for (const std::size_t e : needed) want.push_back(locations[e]);
    ADA_ASSIGN_OR_RETURN(auto images, retriever.retrieve_extents(want));
    for (std::size_t k = 0; k < needed.size(); ++k) {
      fetched.emplace(needed[k], std::move(images[k]));
    }
  }

  std::uint64_t current_block = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t current_lo = 0;          // first global frame of current block
  QueryCache::Image cached;              // keeps a cache hit alive while sliced
  std::vector<std::uint8_t> local;       // block assembled from extents
  const std::vector<std::uint8_t>* block = nullptr;
  for (const std::uint64_t g : picked) {
    const std::uint64_t b = g / kFrameBlock;
    if (b != current_block) {
      current_block = b;
      block = nullptr;
      cached = nullptr;
      const auto [lo_frame, hi_frame] = block_bounds(b);
      current_lo = lo_frame;
      const std::string key = block_key(b, lo_frame, hi_frame);
      if (const auto planned = planned_blocks.find(b); planned != planned_blocks.end()) {
        cached = planned->second;  // resolved once in the planning pass
      } else if (cache_ != nullptr) {
        cached = cache_->lookup_or_fill(logical_name, key, block_generation, &block_guards[b]);
      }
      if (cached != nullptr) {
        block = cached.get();
      } else {
        local.clear();
        local.reserve((hi_frame - lo_frame) * frame_bytes);
        for (std::uint64_t f = lo_frame; f < hi_frame; ++f) {
          const std::size_t e = extent_of(f);
          auto it = fetched.find(e);
          if (it == fetched.end()) {
            // CRC-verified, retried extent read -- the only bytes that may
            // land in the cache below.
            ADA_ASSIGN_OR_RETURN(auto bytes, retriever.retrieve_extent(locations[e]));
            it = fetched.emplace(e, std::move(bytes)).first;
          }
          // canonical_extent proved offset + frame_bytes <= extent length.
          const std::uint64_t off = locations[e].frame_offsets[f - first_frame[e]];
          const auto* frame = it->second.data() + off;
          local.insert(local.end(), frame, frame + frame_bytes);
        }
        if (cache_ != nullptr) {
          cache_->insert(logical_name, key, block_generation, local);
        }
        block = &local;
      }
      // This block's fill landed (or was a hit): release any waiters now
      // rather than at function exit.
      if (const auto claim = block_guards.find(b); claim != block_guards.end()) {
        block_guards.erase(claim);
      }
    }
    const std::uint64_t off = (g - current_lo) * frame_bytes;
    const auto* frame = block->data() + off;
    out.insert(out.end(), frame, frame + frame_bytes);
  }
  count_query_bytes(tag, out.size());
  return out;
}

Result<Ada::TailChunk> Ada::query_tail(const std::string& logical_name, const Tag& tag,
                                       std::uint64_t from_frame) const {
  const obs::ScopedTimer span("query");
  const obs::TraceSpan trace("query_tail", tag);
  ADA_OBS_COUNT("stream.tail_polls", 1);
  ADA_ASSIGN_OR_RETURN(const auto state, mount_.read_stream_state(logical_name));
  TailChunk chunk;
  chunk.from_frame = from_frame;
  if (!state.has_value()) {
    // Batch container: everything is already sealed.  Serve the remaining
    // frames in one chunk; a second poll from the new position comes back
    // empty and the caller stops.
    ADA_ASSIGN_OR_RETURN(
        chunk.image,
        query(logical_name, tag, FrameRange{static_cast<std::uint32_t>(from_frame)}));
    ADA_ASSIGN_OR_RETURN(const auto raw, formats::RawTrajReader::open(chunk.image));
    chunk.frames = raw.frame_count();
    chunk.sealed = true;
    if (chunk.frames == 0) chunk.image.clear();
    return chunk;
  }
  chunk.sealed = state->sealed;
  if (from_frame < state->floor_frames) {
    return out_of_range("tail frame " + std::to_string(from_frame) +
                        " is below the retention floor (" +
                        std::to_string(state->floor_frames) + ")");
  }
  if (from_frame >= state->sealed_frames) return chunk;  // nothing new yet
  // The watermark observed above bounds the read; a flush racing us only
  // means the next poll has more to serve.
  ADA_ASSIGN_OR_RETURN(
      chunk.image,
      query(logical_name, tag,
            FrameRange{static_cast<std::uint32_t>(from_frame),
                       static_cast<std::uint32_t>(state->sealed_frames), 1}));
  chunk.frames = state->sealed_frames - from_frame;
  return chunk;
}

Result<std::optional<plfs::StreamState>> Ada::stream_progress(
    const std::string& logical_name) const {
  return mount_.read_stream_state(logical_name);
}

std::vector<std::uint8_t> Ada::PartialQuery::concat() const {
  std::vector<std::uint8_t> out;
  std::size_t total = 0;
  for (const auto& [tag, bytes] : subsets) total += bytes.size();
  out.reserve(total);
  for (const auto& [tag, bytes] : subsets) out.insert(out.end(), bytes.begin(), bytes.end());
  return out;
}

Result<Ada::PartialQuery> Ada::query_degraded(const std::string& logical_name) const {
  const obs::ScopedTimer span("query");
  const obs::TraceSpan trace("query_degraded", logical_name);
  ADA_OBS_COUNT("query.degraded.calls", 1);
  // Only an unreadable index is fatal: with no tag list there is nothing to
  // degrade to.
  ADA_ASSIGN_OR_RETURN(const auto tag_list, tags(logical_name));
  PartialQuery out;
  for (const Tag& tag : tag_list) {
    auto subset = query(logical_name, tag);
    if (subset.is_ok()) {
      out.subsets.emplace(tag, std::move(subset).value());
    } else {
      ADA_OBS_COUNT("query.degraded.failed_tags", 1);
      obs::warn(obs::WarnSeverity::kWarn, "degraded-read",
                logical_name + "/" + tag + ": " + subset.error().to_string());
      out.failed.push_back(TagFailure{tag, subset.error()});
    }
  }
  if (out.partial()) ADA_OBS_COUNT("query.degraded.partial", 1);
  return out;
}

Result<LabelMap> Ada::labels(const std::string& logical_name) const {
  ADA_ASSIGN_OR_RETURN(const auto bytes, IoRetriever(mount_).retrieve(logical_name, kLabelFileTag));
  return decode_label_file(std::string(bytes.begin(), bytes.end()));
}

Result<std::vector<Tag>> Ada::tags(const std::string& logical_name) const {
  return Indexer(mount_).tags(logical_name);
}

Result<std::uint64_t> Ada::subset_bytes(const std::string& logical_name, const Tag& tag) const {
  return mount_.label_size(logical_name, tag);
}

}  // namespace ada::core
