// I/O dispatcher: routes labeled data subsets to backend file systems.
//
// The I/O determinator's write half (paper Section 3.3): "Coupled with the
// tags and target storage path passed from the data pre-processor, the I/O
// dispatcher sends each data subset to an underlying file system."  Built on
// the PLFS container layer; the placement policy is the paper's
// active-on-SSD / inactive-on-HDD rule, made configurable.
#pragma once

#include <map>
#include <span>
#include <string>

#include "ada/tag.hpp"
#include "common/result.hpp"
#include "plfs/plfs.hpp"

namespace ada::core {

/// Tag -> backend routing.
struct PlacementPolicy {
  std::map<Tag, std::uint32_t> backend_of_tag;
  std::uint32_t default_backend = 0;

  /// The paper's policy: active data ("p") on the SSD file system,
  /// everything else on the HDD file system.
  static PlacementPolicy active_on_ssd(std::uint32_t ssd_backend, std::uint32_t hdd_backend);

  /// Everything on one backend (ablation baseline).
  static PlacementPolicy single_backend(std::uint32_t backend);

  std::uint32_t backend_for(const Tag& tag) const;
};

class IoDispatcher {
 public:
  /// `frame_tables`: populate a per-extent frame table (byte offset of every
  /// RAW frame inside the extent) on each dispatched subset, enabling the
  /// frame-range query fast path.  Reserved labels and non-RAW payloads are
  /// skipped; a failed scan never fails the dispatch.
  IoDispatcher(plfs::PlfsMount& mount, PlacementPolicy policy, bool frame_tables = true)
      : mount_(mount), policy_(std::move(policy)), frame_tables_(frame_tables) {}

  const PlacementPolicy& policy() const noexcept { return policy_; }
  plfs::PlfsMount& mount() noexcept { return mount_; }

  /// Create the container and dispatch each subset to its backend.
  Status dispatch(const std::string& logical_name,
                  const std::map<Tag, std::vector<std::uint8_t>>& subsets);

  /// Append one more labeled blob to an existing container.  Streaming
  /// ingest passes `frame_base` so the record carries its global frame span
  /// [*frame_base, *frame_base + frame_count) for watermark clamping.
  Result<plfs::IndexRecord> dispatch_one(const std::string& logical_name, const Tag& tag,
                                         std::span<const std::uint8_t> bytes,
                                         const std::uint64_t* frame_base = nullptr,
                                         std::uint32_t frame_count = 0);

 private:
  plfs::PlfsMount& mount_;
  PlacementPolicy policy_;
  bool frame_tables_;
};

}  // namespace ada::core
