#include "ada/dispatcher.hpp"

#include <optional>
#include <vector>

#include "formats/raw_traj.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ada::core {

namespace {

// Per-tag dispatch accounting (dynamic names; registry lookup is amortized
// over whole subsets, never per frame).
void count_dispatched(const Tag& tag, std::size_t bytes) {
  if (!obs::enabled()) return;
  obs::Registry& registry = obs::Registry::global();
  registry.counter("ingest.dispatched_bytes").add(bytes);
  registry.counter("ingest.dispatched_bytes." + tag).add(bytes);
}

// Frame table for one extent, or nullopt when disabled, the label is
// reserved (label files and kept originals are not RAW trajectories), or the
// payload does not parse as a RAW image.  A missing table only costs range
// queries their fast path -- it must never fail the ingest.
std::optional<std::vector<std::uint64_t>> frame_table_for(bool enabled, const Tag& tag,
                                                          std::span<const std::uint8_t> bytes) {
  if (!enabled || tag == kLabelFileTag || tag == kOriginalTag) return std::nullopt;
  auto offsets = formats::scan_raw_frame_offsets(bytes);
  if (!offsets.is_ok()) return std::nullopt;
  return std::move(offsets).value();
}

}  // namespace

PlacementPolicy PlacementPolicy::active_on_ssd(std::uint32_t ssd_backend,
                                               std::uint32_t hdd_backend) {
  PlacementPolicy policy;
  policy.backend_of_tag[kProteinTag] = ssd_backend;
  policy.default_backend = hdd_backend;
  return policy;
}

PlacementPolicy PlacementPolicy::single_backend(std::uint32_t backend) {
  PlacementPolicy policy;
  policy.default_backend = backend;
  return policy;
}

std::uint32_t PlacementPolicy::backend_for(const Tag& tag) const {
  const auto it = backend_of_tag.find(tag);
  return it == backend_of_tag.end() ? default_backend : it->second;
}

Status IoDispatcher::dispatch(const std::string& logical_name,
                              const std::map<Tag, std::vector<std::uint8_t>>& subsets) {
  const obs::ScopedTimer span("dispatch");
  const obs::TraceSpan trace("dispatch");
  ADA_RETURN_IF_ERROR(mount_.create_container(logical_name));
  for (const auto& [tag, bytes] : subsets) {
    const obs::TraceSpan subset_trace("dispatch.subset", tag);
    const auto table = frame_table_for(frame_tables_, tag, bytes);
    ADA_RETURN_IF_ERROR(mount_
                            .append(logical_name, tag, policy_.backend_for(tag), bytes,
                                    table.has_value() ? &*table : nullptr)
                            .status());
    count_dispatched(tag, bytes.size());
  }
  return Status::ok();
}

Result<plfs::IndexRecord> IoDispatcher::dispatch_one(const std::string& logical_name,
                                                     const Tag& tag,
                                                     std::span<const std::uint8_t> bytes,
                                                     const std::uint64_t* frame_base,
                                                     std::uint32_t frame_count) {
  const obs::ScopedTimer span("dispatch");
  const obs::TraceSpan trace("dispatch", tag);
  const auto table = frame_table_for(frame_tables_, tag, bytes);
  auto record = mount_.append(logical_name, tag, policy_.backend_for(tag), bytes,
                              table.has_value() ? &*table : nullptr, frame_base, frame_count);
  if (record.is_ok()) count_dispatched(tag, bytes.size());
  return record;
}

}  // namespace ada::core
