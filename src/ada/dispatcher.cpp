#include "ada/dispatcher.hpp"

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ada::core {

namespace {

// Per-tag dispatch accounting (dynamic names; registry lookup is amortized
// over whole subsets, never per frame).
void count_dispatched(const Tag& tag, std::size_t bytes) {
  if (!obs::enabled()) return;
  obs::Registry& registry = obs::Registry::global();
  registry.counter("ingest.dispatched_bytes").add(bytes);
  registry.counter("ingest.dispatched_bytes." + tag).add(bytes);
}

}  // namespace

PlacementPolicy PlacementPolicy::active_on_ssd(std::uint32_t ssd_backend,
                                               std::uint32_t hdd_backend) {
  PlacementPolicy policy;
  policy.backend_of_tag[kProteinTag] = ssd_backend;
  policy.default_backend = hdd_backend;
  return policy;
}

PlacementPolicy PlacementPolicy::single_backend(std::uint32_t backend) {
  PlacementPolicy policy;
  policy.default_backend = backend;
  return policy;
}

std::uint32_t PlacementPolicy::backend_for(const Tag& tag) const {
  const auto it = backend_of_tag.find(tag);
  return it == backend_of_tag.end() ? default_backend : it->second;
}

Status IoDispatcher::dispatch(const std::string& logical_name,
                              const std::map<Tag, std::vector<std::uint8_t>>& subsets) {
  const obs::ScopedTimer span("dispatch");
  const obs::TraceSpan trace("dispatch");
  ADA_RETURN_IF_ERROR(mount_.create_container(logical_name));
  for (const auto& [tag, bytes] : subsets) {
    const obs::TraceSpan subset_trace("dispatch.subset", tag);
    ADA_RETURN_IF_ERROR(
        mount_.append(logical_name, tag, policy_.backend_for(tag), bytes).status());
    count_dispatched(tag, bytes.size());
  }
  return Status::ok();
}

Result<plfs::IndexRecord> IoDispatcher::dispatch_one(const std::string& logical_name,
                                                     const Tag& tag,
                                                     std::span<const std::uint8_t> bytes) {
  const obs::ScopedTimer span("dispatch");
  const obs::TraceSpan trace("dispatch", tag);
  auto record = mount_.append(logical_name, tag, policy_.backend_for(tag), bytes);
  if (record.is_ok()) count_dispatched(tag, bytes.size());
  return record;
}

}  // namespace ada::core
