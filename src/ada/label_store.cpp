#include "ada/label_store.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace ada::core {

namespace {
constexpr const char* kHeader = "# ada label file v1";
}

std::string encode_label_file(const LabelMap& labels) {
  std::string out = kHeader;
  out += "\natoms " + std::to_string(labels.atom_count) + "\n";
  for (const auto& [tag, selection] : labels.groups) {
    out += tag + " " + selection.to_string() + "\n";
  }
  return out;
}

Result<LabelMap> decode_label_file(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  if (!std::getline(stream, line) || trim(line) != kHeader) {
    return corrupt_data("label file missing header");
  }
  if (!std::getline(stream, line)) return corrupt_data("label file missing atoms line");
  const auto atoms_fields = split_whitespace(line);
  if (atoms_fields.size() != 2 || atoms_fields[0] != "atoms") {
    return corrupt_data("bad atoms line: " + line);
  }
  const long long atoms = parse_int(atoms_fields[1]);
  if (atoms < 0) return corrupt_data("bad atom count: " + atoms_fields[1]);

  LabelMap labels;
  labels.atom_count = static_cast<std::uint32_t>(atoms);
  while (std::getline(stream, line)) {
    const auto trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto fields = split_whitespace(trimmed);
    if (fields.size() != 2) return corrupt_data("bad label line: " + line);
    if (labels.groups.count(fields[0]) != 0) {
      return corrupt_data("duplicate tag in label file: " + fields[0]);
    }
    ADA_ASSIGN_OR_RETURN(chem::Selection selection, chem::Selection::parse(fields[1]));
    labels.groups[fields[0]] = std::move(selection);
  }
  return labels;
}

}  // namespace ada::core
