// Streaming ingest: frame-at-a-time data acquisition.
//
// The paper's write path ("when the .pdb and .xtc files are sent to ADA for
// permanent storage") is batch-shaped, but a running MD application emits
// frames continuously.  IngestStream accepts decoded frames as they arrive,
// splits each into labeled subsets, and flushes a dropping per tag every
// `chunk_frames` -- so subsets become durable long before the simulation
// ends, and a crash loses at most one chunk.  Chunked subsets read back
// through the same tag queries (formats::RawTrajCatReader joins the chunks).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>

#include "ada/categorizer.hpp"
#include "ada/dispatcher.hpp"
#include "ada/tag.hpp"
#include "chem/system.hpp"
#include "common/result.hpp"
#include "formats/raw_traj.hpp"

namespace ada::core {

/// What a finished stream did.
struct StreamReport {
  std::string logical_name;
  std::uint32_t frames = 0;
  std::uint32_t chunks = 0;
  std::map<Tag, std::uint64_t> subset_bytes;
  std::uint64_t sealed_frames = 0;    // final watermark (== frames)
  std::uint64_t floor_frames = 0;     // retention floor at seal time
  std::uint64_t retention_drops = 0;  // chunks dropped by windowed retention
};

class IngestStream {
 public:
  /// Create the container and start streaming.  `labels` must partition the
  /// atom range; `chunk_frames` bounds the data lost on a crash.  `threads`
  /// is the per-frame split budget: with more than one, each frame's
  /// per-tag subset extraction fans out to the shared thread pool (every
  /// writer is touched by exactly one task, so the per-tag byte streams are
  /// identical to the serial ones).  `retain_bytes`, when non-zero, enables
  /// windowed retention: once the live sealed chunks exceed the budget, the
  /// oldest chunks are dropped (index rewrite + dropping unlink) and the
  /// retention floor rises -- queries below the floor return kOutOfRange.
  /// The newest sealed chunk is always kept.
  ///
  /// begin() also publishes the container's initial (unsealed) stream state,
  /// so concurrent readers see a live stream with watermark 0 instead of a
  /// half-batch container; every chunk flush atomically appends the chunk's
  /// extents and then advances the sealed-frame watermark over them.
  static Result<IngestStream> begin(IoDispatcher& dispatcher, LabelMap labels,
                                    std::string logical_name, std::uint32_t chunk_frames = 64,
                                    unsigned threads = 1, std::uint64_t retain_bytes = 0);

  /// Moving transfers the container handle: the source is left *sealed*
  /// (no dispatcher, finished) so a stale add_frame()/finish() on it fails
  /// cleanly instead of double-dispatching the label file into the
  /// container.  (A defaulted move would copy `dispatcher_` and leave
  /// `finished_ == false` behind -- the raw-handle double-free hazard.)
  IngestStream(IngestStream&& other) noexcept;
  IngestStream& operator=(IngestStream&&) = delete;

  /// Append one decoded frame (atom order must match the label map).
  Status add_frame(std::uint32_t step, float time_ps, const chem::Box& box,
                   std::span<const float> coords);

  std::uint32_t frames_ingested() const noexcept { return frames_; }
  std::uint32_t chunks_flushed() const noexcept { return chunks_; }

  /// Published sealed-frame watermark (frames below it are readable now).
  std::uint64_t sealed_frames() const noexcept { return state_.sealed_frames; }
  /// Retention floor (frames below it have been dropped).
  std::uint64_t floor_frames() const noexcept { return state_.floor_frames; }

  /// Flush the partial chunk, persist the label file, and seal the stream.
  /// No further add_frame calls are allowed afterwards.
  Result<StreamReport> finish();

 private:
  IngestStream(IoDispatcher& dispatcher, LabelMap labels, std::string logical_name,
               std::uint32_t chunk_frames, unsigned threads, std::uint64_t retain_bytes);

  /// One sealed chunk still live (not yet dropped by retention).
  struct ChunkInfo {
    std::uint64_t first_frame = 0;
    std::uint32_t frames = 0;
    std::uint64_t bytes = 0;  // summed across tags
  };

  void reset_writers();
  Status flush_chunk();
  Status apply_retention();

  IoDispatcher* dispatcher_;
  LabelMap labels_;
  std::string logical_name_;
  std::uint32_t chunk_frames_;
  unsigned threads_ = 1;
  std::uint64_t retain_bytes_ = 0;
  std::map<Tag, formats::RawTrajWriter> writers_;
  std::uint32_t frames_in_chunk_ = 0;
  std::uint32_t frames_ = 0;
  std::uint32_t chunks_ = 0;
  std::map<Tag, std::uint64_t> subset_bytes_;
  plfs::StreamState state_;
  std::deque<ChunkInfo> live_chunks_;
  std::uint64_t live_bytes_ = 0;
  bool finished_ = false;
};

}  // namespace ada::core
