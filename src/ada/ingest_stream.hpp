// Streaming ingest: frame-at-a-time data acquisition.
//
// The paper's write path ("when the .pdb and .xtc files are sent to ADA for
// permanent storage") is batch-shaped, but a running MD application emits
// frames continuously.  IngestStream accepts decoded frames as they arrive,
// splits each into labeled subsets, and flushes a dropping per tag every
// `chunk_frames` -- so subsets become durable long before the simulation
// ends, and a crash loses at most one chunk.  Chunked subsets read back
// through the same tag queries (formats::RawTrajCatReader joins the chunks).
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "ada/categorizer.hpp"
#include "ada/dispatcher.hpp"
#include "ada/tag.hpp"
#include "chem/system.hpp"
#include "common/result.hpp"
#include "formats/raw_traj.hpp"

namespace ada::core {

/// What a finished stream did.
struct StreamReport {
  std::string logical_name;
  std::uint32_t frames = 0;
  std::uint32_t chunks = 0;
  std::map<Tag, std::uint64_t> subset_bytes;
};

class IngestStream {
 public:
  /// Create the container and start streaming.  `labels` must partition the
  /// atom range; `chunk_frames` bounds the data lost on a crash.  `threads`
  /// is the per-frame split budget: with more than one, each frame's
  /// per-tag subset extraction fans out to the shared thread pool (every
  /// writer is touched by exactly one task, so the per-tag byte streams are
  /// identical to the serial ones).
  static Result<IngestStream> begin(IoDispatcher& dispatcher, LabelMap labels,
                                    std::string logical_name, std::uint32_t chunk_frames = 64,
                                    unsigned threads = 1);

  /// Moving transfers the container handle: the source is left *sealed*
  /// (no dispatcher, finished) so a stale add_frame()/finish() on it fails
  /// cleanly instead of double-dispatching the label file into the
  /// container.  (A defaulted move would copy `dispatcher_` and leave
  /// `finished_ == false` behind -- the raw-handle double-free hazard.)
  IngestStream(IngestStream&& other) noexcept;
  IngestStream& operator=(IngestStream&&) = delete;

  /// Append one decoded frame (atom order must match the label map).
  Status add_frame(std::uint32_t step, float time_ps, const chem::Box& box,
                   std::span<const float> coords);

  std::uint32_t frames_ingested() const noexcept { return frames_; }
  std::uint32_t chunks_flushed() const noexcept { return chunks_; }

  /// Flush the partial chunk, persist the label file, and seal the stream.
  /// No further add_frame calls are allowed afterwards.
  Result<StreamReport> finish();

 private:
  IngestStream(IoDispatcher& dispatcher, LabelMap labels, std::string logical_name,
               std::uint32_t chunk_frames, unsigned threads);

  void reset_writers();
  Status flush_chunk();

  IoDispatcher* dispatcher_;
  LabelMap labels_;
  std::string logical_name_;
  std::uint32_t chunk_frames_;
  unsigned threads_ = 1;
  std::map<Tag, formats::RawTrajWriter> writers_;
  std::uint32_t frames_in_chunk_ = 0;
  std::uint32_t frames_ = 0;
  std::uint32_t chunks_ = 0;
  std::map<Tag, std::uint64_t> subset_bytes_;
  bool finished_ = false;
};

}  // namespace ada::core
