#include "ada/ingest_stream.hpp"

#include <filesystem>
#include <functional>
#include <utility>
#include <vector>

#include "ada/label_store.hpp"
#include "common/parallel.hpp"
#include "formats/xtc_file.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ada::core {

IngestStream::IngestStream(IngestStream&& other) noexcept
    : dispatcher_(std::exchange(other.dispatcher_, nullptr)),
      labels_(std::move(other.labels_)),
      logical_name_(std::move(other.logical_name_)),
      chunk_frames_(other.chunk_frames_),
      threads_(other.threads_),
      retain_bytes_(other.retain_bytes_),
      writers_(std::move(other.writers_)),
      frames_in_chunk_(other.frames_in_chunk_),
      frames_(other.frames_),
      chunks_(other.chunks_),
      subset_bytes_(std::move(other.subset_bytes_)),
      state_(other.state_),
      live_chunks_(std::move(other.live_chunks_)),
      live_bytes_(other.live_bytes_),
      finished_(other.finished_) {
  other.finished_ = true;  // seal the husk: add_frame/finish now reject it
}

IngestStream::IngestStream(IoDispatcher& dispatcher, LabelMap labels, std::string logical_name,
                           std::uint32_t chunk_frames, unsigned threads,
                           std::uint64_t retain_bytes)
    : dispatcher_(&dispatcher),
      labels_(std::move(labels)),
      logical_name_(std::move(logical_name)),
      chunk_frames_(chunk_frames),
      threads_(threads),
      retain_bytes_(retain_bytes) {
  reset_writers();
}

Result<IngestStream> IngestStream::begin(IoDispatcher& dispatcher, LabelMap labels,
                                         std::string logical_name, std::uint32_t chunk_frames,
                                         unsigned threads, std::uint64_t retain_bytes) {
  if (!labels.is_partition()) {
    return invalid_argument("label map does not partition the atom range");
  }
  if (chunk_frames == 0) return invalid_argument("chunk_frames must be positive");
  ADA_RETURN_IF_ERROR(dispatcher.mount().create_container(logical_name));
  // Mark the container as live-streaming from the start: watermark 0, not
  // sealed.  Readers now clamp to the watermark instead of treating the
  // half-written container as batch data.
  ADA_RETURN_IF_ERROR(dispatcher.mount().write_stream_state(logical_name, plfs::StreamState{}));
  return IngestStream(dispatcher, std::move(labels), std::move(logical_name), chunk_frames,
                      threads, retain_bytes);
}

void IngestStream::reset_writers() {
  writers_.clear();
  for (const auto& [tag, selection] : labels_.groups) {
    writers_.emplace(tag, formats::RawTrajWriter(static_cast<std::uint32_t>(selection.count())));
  }
  frames_in_chunk_ = 0;
}

Status IngestStream::add_frame(std::uint32_t step, float time_ps, const chem::Box& box,
                               std::span<const float> coords) {
  if (finished_ || dispatcher_ == nullptr) {
    return failed_precondition("stream already finished or moved-from");
  }
  ADA_OBS_COUNT("stream.frames", 1);
  if (coords.size() != std::size_t{3} * labels_.atom_count) {
    return invalid_argument("frame has " + std::to_string(coords.size() / 3) +
                            " atoms, label map expects " + std::to_string(labels_.atom_count));
  }
  const unsigned budget = threads_ != 0 ? threads_ : ThreadPool::shared().worker_count() + 1;
  if (budget > 1 && writers_.size() > 1) {
    // Frame-level tag fan-out on the shared pool: every task owns exactly
    // one writer, so each per-tag byte stream is identical to the serial
    // one and only the extraction work runs concurrently.
    std::vector<Status> statuses(writers_.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(writers_.size());
    std::size_t i = 0;
    for (auto& [tag, writer] : writers_) {
      const chem::Selection& selection = labels_.groups.at(tag);
      formats::RawTrajWriter* w = &writer;
      tasks.push_back([w, &selection, &statuses, i, step, time_ps, &box, coords] {
        const auto subset = formats::extract_subset(coords, selection);
        statuses[i] = w->add_frame(step, time_ps, box, subset);
      });
      ++i;
    }
    parallel_run(std::move(tasks), threads_);
    for (const Status& status : statuses) {
      ADA_RETURN_IF_ERROR(status);
    }
  } else {
    for (auto& [tag, writer] : writers_) {
      const auto subset = formats::extract_subset(coords, labels_.groups.at(tag));
      ADA_RETURN_IF_ERROR(writer.add_frame(step, time_ps, box, subset));
    }
  }
  ++frames_;
  ++frames_in_chunk_;
  if (frames_in_chunk_ >= chunk_frames_) return flush_chunk();
  return Status::ok();
}

Status IngestStream::flush_chunk() {
  if (frames_in_chunk_ == 0) return Status::ok();
  const obs::ScopedTimer span("stream_flush");
  const obs::TraceSpan trace("stream_flush", logical_name_);
  obs::trace_counter("stream.chunk_frames", frames_in_chunk_);
  ADA_OBS_COUNT("stream.chunks", 1);
  const std::uint64_t first_frame = state_.sealed_frames;
  std::uint64_t chunk_bytes = 0;
  for (auto& [tag, writer] : writers_) {
    const auto image = writer.finish();
    subset_bytes_[tag] += image.size();
    chunk_bytes += image.size();
    if (obs::enabled()) {
      obs::Registry::global().counter("stream.bytes." + tag).add(image.size());
    }
    ADA_RETURN_IF_ERROR(dispatcher_
                            ->dispatch_one(logical_name_, tag, image, &first_frame,
                                           frames_in_chunk_)
                            .status());
  }
  // Publish: every tag's extent for this chunk is durable, so advance the
  // sealed-frame watermark over it.  A crash before this write leaves the
  // new extents indexed but above the watermark -- invisible to readers,
  // which is exactly the open-tail contract.
  state_.sealed_frames += frames_in_chunk_;
  ++state_.sealed_chunks;
  ADA_RETURN_IF_ERROR(dispatcher_->mount().write_stream_state(logical_name_, state_));
  if (obs::enabled()) {
    obs::Registry::global().gauge("stream.sealed_frames").set(
        static_cast<double>(state_.sealed_frames));
  }
  live_chunks_.push_back(ChunkInfo{first_frame, frames_in_chunk_, chunk_bytes});
  live_bytes_ += chunk_bytes;
  ++chunks_;
  reset_writers();
  return apply_retention();
}

Status IngestStream::apply_retention() {
  if (retain_bytes_ == 0) return Status::ok();
  bool dropped = false;
  plfs::PlfsMount& mount = dispatcher_->mount();
  // Drop oldest sealed chunks until the live window fits the budget; the
  // newest chunk always survives so the stream never goes dark.  Order per
  // chunk: rewrite the index without the chunk's records (no record ever
  // references a missing dropping), unlink the droppings (a failed unlink
  // leaves an orphan for fsck), then publish the raised floor.
  while (live_bytes_ > retain_bytes_ && live_chunks_.size() > 1) {
    const ChunkInfo oldest = live_chunks_.front();
    const std::uint64_t new_floor = oldest.first_frame + oldest.frames;
    ADA_ASSIGN_OR_RETURN(auto records, mount.read_index(logical_name_));
    std::vector<plfs::IndexRecord> keep;
    std::vector<plfs::IndexRecord> drop;
    keep.reserve(records.size());
    for (plfs::IndexRecord& r : records) {
      if (r.has_frame_base() && r.frame_base + r.frame_count <= new_floor) {
        drop.push_back(std::move(r));
      } else {
        keep.push_back(std::move(r));
      }
    }
    ADA_RETURN_IF_ERROR(mount.rewrite_index(logical_name_, keep));
    for (const plfs::IndexRecord& r : drop) {
      std::error_code ec;
      std::filesystem::remove(mount.dropping_host_path(r.backend, logical_name_, r.dropping), ec);
    }
    live_bytes_ -= oldest.bytes;
    live_chunks_.pop_front();
    state_.floor_frames = new_floor;
    ++state_.retention_drops;
    ADA_OBS_COUNT("stream.retention_drops", 1);
    dropped = true;
  }
  if (dropped) {
    ADA_RETURN_IF_ERROR(mount.write_stream_state(logical_name_, state_));
  }
  return Status::ok();
}

Result<StreamReport> IngestStream::finish() {
  if (finished_ || dispatcher_ == nullptr) {
    return failed_precondition("stream already finished or moved-from");
  }
  ADA_RETURN_IF_ERROR(flush_chunk());
  const std::string label_text = encode_label_file(labels_);
  ADA_RETURN_IF_ERROR(
      dispatcher_
          ->dispatch_one(logical_name_, kLabelFileTag,
                         std::span(reinterpret_cast<const std::uint8_t*>(label_text.data()),
                                   label_text.size()))
          .status());
  // Seal: the watermark stops moving and --follow loops terminate.
  state_.sealed = true;
  ADA_RETURN_IF_ERROR(dispatcher_->mount().write_stream_state(logical_name_, state_));
  finished_ = true;
  StreamReport report;
  report.logical_name = logical_name_;
  report.frames = frames_;
  report.chunks = chunks_;
  report.subset_bytes = subset_bytes_;
  report.sealed_frames = state_.sealed_frames;
  report.floor_frames = state_.floor_frames;
  report.retention_drops = state_.retention_drops;
  return report;
}

}  // namespace ada::core
