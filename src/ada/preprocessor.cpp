#include "ada/preprocessor.hpp"

#include <atomic>
#include <functional>

#include "common/parallel.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "formats/raw_traj.hpp"
#include "formats/xtc_file.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ada::core {

DataPreProcessor::DataPreProcessor(LabelMap labels) : labels_(std::move(labels)) {
  ADA_CHECK(labels_.is_partition());
}

Result<std::map<Tag, std::vector<std::uint8_t>>> DataPreProcessor::split(
    std::span<const std::uint8_t> xtc_image, PreprocessStats* stats, unsigned threads) const {
  const unsigned budget = threads != 0 ? threads : ThreadPool::shared().worker_count() + 1;
  if (budget <= 1) return split_serial(xtc_image, stats);
  return split_parallel(xtc_image, stats, budget, threads);
}

Result<std::map<Tag, std::vector<std::uint8_t>>> DataPreProcessor::split_serial(
    std::span<const std::uint8_t> xtc_image, PreprocessStats* stats) const {
  const obs::ScopedTimer span("preprocess");
  const obs::TraceSpan trace("preprocess");
  std::map<Tag, formats::RawTrajWriter> writers;
  for (const auto& [tag, selection] : labels_.groups) {
    writers.emplace(tag, formats::RawTrajWriter(static_cast<std::uint32_t>(selection.count())));
  }

  Stopwatch stopwatch;
  std::uint32_t frames = 0;
  formats::XtcReader reader(xtc_image);
  while (true) {
    std::optional<formats::TrajFrame> frame;
    {
      const obs::ScopedTimer decode_span("decode");
      const obs::TraceSpan decode_trace("decode");
      ADA_ASSIGN_OR_RETURN(frame, reader.next());
    }
    if (!frame.has_value()) break;
    if (frame->atom_count() != labels_.atom_count) {
      return corrupt_data("frame " + std::to_string(frames) + " has " +
                          std::to_string(frame->atom_count()) + " atoms, label map expects " +
                          std::to_string(labels_.atom_count));
    }
    const obs::ScopedTimer split_span("split");
    const obs::TraceSpan split_trace("split");
    for (auto& [tag, writer] : writers) {
      const auto subset = formats::extract_subset(frame->coords, labels_.groups.at(tag));
      ADA_RETURN_IF_ERROR(writer.add_frame(frame->step, frame->time_ps, frame->box, subset));
    }
    ++frames;
  }
  const double wall = stopwatch.elapsed_seconds();
  ADA_OBS_COUNT("ingest.frames", frames);

  std::map<Tag, std::vector<std::uint8_t>> out;
  for (auto& [tag, writer] : writers) out.emplace(tag, writer.finish());

  if (stats != nullptr) {
    stats->frames = frames;
    stats->atoms = labels_.atom_count;
    stats->compressed_bytes = xtc_image.size();
    stats->decompress_wall_seconds = wall;
    stats->subset_bytes.clear();
    stats->subset_atoms.clear();
    for (const auto& [tag, image] : out) {
      stats->subset_bytes[tag] = image.size();
      stats->subset_atoms[tag] = labels_.groups.at(tag).count();
    }
  }
  return out;
}

Result<std::map<Tag, std::vector<std::uint8_t>>> DataPreProcessor::split_parallel(
    std::span<const std::uint8_t> xtc_image, PreprocessStats* stats, unsigned budget,
    unsigned threads) const {
  const obs::ScopedTimer span("preprocess");
  const obs::TraceSpan trace("preprocess");
  Stopwatch stopwatch;

  // Stage 1: header-only boundary scan -- frame extents, no decompression.
  std::vector<formats::XtcFrameExtent> extents;
  {
    const obs::ScopedTimer scan_span("scan");
    const obs::TraceSpan scan_trace("scan");
    ADA_ASSIGN_OR_RETURN(extents, formats::scan_xtc_extents(xtc_image));
  }
  const auto frames = static_cast<std::uint32_t>(extents.size());
  for (std::uint32_t f = 0; f < frames; ++f) {
    if (extents[f].atom_count != labels_.atom_count) {
      return corrupt_data("frame " + std::to_string(f) + " has " +
                          std::to_string(extents[f].atom_count) + " atoms, label map expects " +
                          std::to_string(labels_.atom_count));
    }
  }
  const unsigned workers = static_cast<unsigned>(std::min<std::uint32_t>(budget, frames));
  if (workers <= 1) return split_serial(xtc_image, stats);

  // Stage 2: fan frame ranges out to the pool.  More ranges than workers so
  // stealing can rebalance frames whose coordinate blocks decode unevenly.
  // Ranges may only begin at self-contained frames (any v1 frame, or a v2
  // keyframe): a predicted frame can't be the first one a worker decodes.
  // For v1 streams every frame qualifies, so the boundaries land exactly
  // where the old fixed-chunk split put them.
  const std::uint32_t range_count = std::min(frames, workers * 4u);
  const std::uint32_t chunk = (frames + range_count - 1) / range_count;
  std::vector<std::uint32_t> starts{0};
  std::uint32_t next_target = chunk;
  for (std::uint32_t f = 1; f < frames; ++f) {
    if (extents[f].intra && f >= next_target) {
      starts.push_back(f);
      next_target = f + chunk;
    }
  }
  if (starts.size() <= 1) return split_serial(xtc_image, stats);
  struct RangeShard {
    std::uint32_t first = 0;
    std::uint32_t last = 0;  // exclusive
    std::map<Tag, formats::RawTrajWriter> writers;
    Status status;
  };
  std::vector<RangeShard> shards;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    RangeShard shard;
    shard.first = starts[i];
    shard.last = i + 1 < starts.size() ? starts[i + 1] : frames;
    for (const auto& [tag, selection] : labels_.groups) {
      shard.writers.emplace(tag,
                            formats::RawTrajWriter(static_cast<std::uint32_t>(selection.count())));
    }
    shards.push_back(std::move(shard));
  }

  std::atomic<std::uint64_t> decode_busy_ns{0};
  auto run_range = [&](RangeShard& shard) -> Status {
    const obs::ScopedTimer range_span("split_range");
    const obs::TraceSpan range_trace("split_range");
    const Stopwatch busy;
    const std::size_t begin_offset = extents[shard.first].offset;
    const std::size_t end_offset = extents[shard.last - 1].offset + extents[shard.last - 1].size;
    formats::XtcReader reader(xtc_image.subspan(begin_offset, end_offset - begin_offset));
    for (std::uint32_t f = shard.first; f < shard.last; ++f) {
      std::optional<formats::TrajFrame> frame;
      {
        const obs::ScopedTimer decode_span("decode");
        const obs::TraceSpan decode_trace("decode");
        ADA_ASSIGN_OR_RETURN(frame, reader.next());
      }
      if (!frame.has_value()) return corrupt_data("frame " + std::to_string(f) + " missing");
      if (frame->atom_count() != labels_.atom_count) {
        return corrupt_data("frame " + std::to_string(f) + " has " +
                            std::to_string(frame->atom_count()) + " atoms, label map expects " +
                            std::to_string(labels_.atom_count));
      }
      const obs::ScopedTimer split_span("split");
      const obs::TraceSpan split_trace("split");
      for (auto& [tag, writer] : shard.writers) {
        const auto subset = formats::extract_subset(frame->coords, labels_.groups.at(tag));
        ADA_RETURN_IF_ERROR(writer.add_frame(frame->step, frame->time_ps, frame->box, subset));
      }
    }
    if (obs::enabled()) {
      decode_busy_ns.fetch_add(static_cast<std::uint64_t>(busy.elapsed_seconds() * 1e9),
                               std::memory_order_relaxed);
    }
    return Status::ok();
  };

  std::vector<std::function<void()>> tasks;
  tasks.reserve(shards.size());
  for (auto& shard : shards) {
    tasks.push_back([&run_range, &shard] { shard.status = run_range(shard); });
  }
  parallel_run(std::move(tasks), threads);

  // First failure in frame order wins, mirroring the serial path.
  for (const auto& shard : shards) {
    ADA_RETURN_IF_ERROR(shard.status);
  }
  ADA_OBS_COUNT("ingest.frames", frames);
  ADA_OBS_COUNT("preprocess.ranges", shards.size());
  ADA_OBS_COUNT("preprocess.decode_busy_ns", decode_busy_ns.load(std::memory_order_relaxed));

  // Stage 3: ordered merge -- concatenate the shards' frame sections in
  // range order, byte-identical to one serial writer.
  std::map<Tag, std::vector<std::uint8_t>> out;
  {
    const obs::ScopedTimer merge_span("merge");
    const obs::TraceSpan merge_trace("merge");
    const Stopwatch merge_busy;
    for (const auto& [tag, selection] : labels_.groups) {
      std::vector<std::vector<std::uint8_t>> images;
      images.reserve(shards.size());
      for (auto& shard : shards) images.push_back(shard.writers.at(tag).finish());
      ADA_ASSIGN_OR_RETURN(
          auto merged,
          formats::merge_raw_images(static_cast<std::uint32_t>(selection.count()), images));
      out.emplace(tag, std::move(merged));
    }
    ADA_OBS_COUNT("preprocess.merge_busy_ns", merge_busy.elapsed_seconds() * 1e9);
  }

  if (stats != nullptr) {
    stats->frames = frames;
    stats->atoms = labels_.atom_count;
    stats->compressed_bytes = xtc_image.size();
    stats->decompress_wall_seconds = stopwatch.elapsed_seconds();
    stats->subset_bytes.clear();
    stats->subset_atoms.clear();
    for (const auto& [tag, image] : out) {
      stats->subset_bytes[tag] = image.size();
      stats->subset_atoms[tag] = labels_.groups.at(tag).count();
    }
  }
  return out;
}

}  // namespace ada::core
