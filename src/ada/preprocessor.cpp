#include "ada/preprocessor.hpp"

#include "common/stopwatch.hpp"
#include "formats/raw_traj.hpp"
#include "formats/xtc_file.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ada::core {

DataPreProcessor::DataPreProcessor(LabelMap labels) : labels_(std::move(labels)) {
  ADA_CHECK(labels_.is_partition());
}

Result<std::map<Tag, std::vector<std::uint8_t>>> DataPreProcessor::split(
    std::span<const std::uint8_t> xtc_image, PreprocessStats* stats) const {
  const obs::ScopedTimer span("preprocess");
  const obs::TraceSpan trace("preprocess");
  std::map<Tag, formats::RawTrajWriter> writers;
  for (const auto& [tag, selection] : labels_.groups) {
    writers.emplace(tag, formats::RawTrajWriter(static_cast<std::uint32_t>(selection.count())));
  }

  Stopwatch stopwatch;
  std::uint32_t frames = 0;
  formats::XtcReader reader(xtc_image);
  while (true) {
    std::optional<formats::TrajFrame> frame;
    {
      const obs::ScopedTimer decode_span("decode");
      const obs::TraceSpan decode_trace("decode");
      ADA_ASSIGN_OR_RETURN(frame, reader.next());
    }
    if (!frame.has_value()) break;
    if (frame->atom_count() != labels_.atom_count) {
      return corrupt_data("frame " + std::to_string(frames) + " has " +
                          std::to_string(frame->atom_count()) + " atoms, label map expects " +
                          std::to_string(labels_.atom_count));
    }
    const obs::ScopedTimer split_span("split");
    const obs::TraceSpan split_trace("split");
    for (auto& [tag, writer] : writers) {
      const auto subset = formats::extract_subset(frame->coords, labels_.groups.at(tag));
      ADA_RETURN_IF_ERROR(writer.add_frame(frame->step, frame->time_ps, frame->box, subset));
    }
    ++frames;
  }
  const double wall = stopwatch.elapsed_seconds();
  ADA_OBS_COUNT("ingest.frames", frames);

  std::map<Tag, std::vector<std::uint8_t>> out;
  for (auto& [tag, writer] : writers) out.emplace(tag, writer.finish());

  if (stats != nullptr) {
    stats->frames = frames;
    stats->atoms = labels_.atom_count;
    stats->compressed_bytes = xtc_image.size();
    stats->decompress_wall_seconds = wall;
    stats->subset_bytes.clear();
    stats->subset_atoms.clear();
    for (const auto& [tag, image] : out) {
      stats->subset_bytes[tag] = image.size();
      stats->subset_atoms[tag] = labels_.groups.at(tag).count();
    }
  }
  return out;
}

}  // namespace ada::core
