// Indexer + I/O retriever: the read half of the I/O determinator.
//
// "When users send data queries for certain groups of datasets, the indexer
//  uses tags from the queries to look for paths of datasets on the
//  underlying file systems and passes them to the I/O retriever.  The I/O
//  retriever then raises I/O requests ... and obtains the requested data."
//  (paper Section 3.2)
#pragma once

#include <span>
#include <string>
#include <vector>

#include "ada/tag.hpp"
#include "common/result.hpp"
#include "plfs/plfs.hpp"

namespace ada::core {

/// The indexer's answer: where a tagged subset lives.
struct DatasetLocation {
  std::uint32_t backend = 0;
  std::string backend_name;
  std::string host_path;   // resolvable host path of the dropping
  std::uint64_t bytes = 0;
  std::uint64_t physical_offset = 0;  // extent offset inside the dropping
  std::uint32_t crc32c = 0;           // stored extent checksum
  bool has_crc = false;               // false for legacy v1 index records
  /// Byte offset of each decoded frame inside the extent (valid iff
  /// `has_frame_table`): the index-side half of frame-range addressing.
  std::vector<std::uint64_t> frame_offsets;
  bool has_frame_table = false;  // false for records ingested without tables
  /// Global frame span [frame_base, frame_base + frame_count) of this extent
  /// (valid iff `has_frame_base`; streaming ingest).  locate() has already
  /// clamped the location list to the sealed-frame watermark.
  std::uint64_t frame_base = 0;
  std::uint32_t frame_count = 0;
  bool has_frame_base = false;
};

class Indexer {
 public:
  explicit Indexer(const plfs::PlfsMount& mount) : mount_(mount) {}

  /// Locations of every dropping carrying `tag` in logical order.
  Result<std::vector<DatasetLocation>> locate(const std::string& logical_name,
                                              const Tag& tag) const;

  /// All user tags present in a container (reserved labels filtered out).
  Result<std::vector<Tag>> tags(const std::string& logical_name) const;

 private:
  const plfs::PlfsMount& mount_;
};

/// Scatter-gather retrieval knobs (docs/performance.md, "Scatter-gather
/// retrieval").  The defaults reproduce the serial pre-scatter-gather read
/// path byte for byte.
struct RetrieveOptions {
  /// Extent reads in flight per retrieve() call.  0 or 1 keeps the serial
  /// path (one extent at a time, read then verified); N > 1 fans per-extent
  /// read+verify tasks onto the shared thread pool so transfer of one extent
  /// overlaps verification/decode of another.
  unsigned threads = 0;

  /// Per-backend admission window for the parallel path: at most this many
  /// extent reads in flight against any one backend (0 = unbounded).  Keeps
  /// a wide fan-out from swamping a single server while other backends idle.
  unsigned queue_depth = 4;

  bool parallel() const noexcept { return threads > 1; }
};

class IoRetriever {
 public:
  explicit IoRetriever(const plfs::PlfsMount& mount, RetrieveOptions options = {})
      : mount_(mount), options_(options) {}

  /// Fetch the full subset image for `tag` (POSIX reads on the droppings the
  /// indexer located).  Reads are retried under the mount's retry policy and
  /// every extent is verified against its stored CRC32C -- a mismatch is a
  /// typed kCorruptData error, never silently served bytes.
  Result<std::vector<std::uint8_t>> retrieve(const std::string& logical_name,
                                             const Tag& tag) const;

  /// Fetch already-located extents, concatenated in location order.  Callers
  /// that hold `DatasetLocation`s (the frame-range path, degraded sweeps)
  /// use this to skip a second index walk.  With options().parallel() the
  /// extents are read scatter-gather; the assembled bytes are byte-identical
  /// to the serial loop either way (ordered merge).
  Result<std::vector<std::uint8_t>> retrieve(std::span<const DatasetLocation> locations) const;

  /// Fetch several located extents as separate images, in location order
  /// (the frame-range fast path assembles blocks out of these).  Same
  /// scatter-gather/serial split as retrieve(span).
  Result<std::vector<std::vector<std::uint8_t>>> retrieve_extents(
      std::span<const DatasetLocation> locations) const;

  /// Fetch one located extent's bytes (same retry + CRC discipline as
  /// retrieve()).
  Result<std::vector<std::uint8_t>> retrieve_extent(const DatasetLocation& location) const;

  const RetrieveOptions& options() const noexcept { return options_; }

 private:
  const plfs::PlfsMount& mount_;
  RetrieveOptions options_;
};

}  // namespace ada::core
