// Indexer + I/O retriever: the read half of the I/O determinator.
//
// "When users send data queries for certain groups of datasets, the indexer
//  uses tags from the queries to look for paths of datasets on the
//  underlying file systems and passes them to the I/O retriever.  The I/O
//  retriever then raises I/O requests ... and obtains the requested data."
//  (paper Section 3.2)
#pragma once

#include <string>
#include <vector>

#include "ada/tag.hpp"
#include "common/result.hpp"
#include "plfs/plfs.hpp"

namespace ada::core {

/// The indexer's answer: where a tagged subset lives.
struct DatasetLocation {
  std::uint32_t backend = 0;
  std::string backend_name;
  std::string host_path;   // resolvable host path of the dropping
  std::uint64_t bytes = 0;
  std::uint64_t physical_offset = 0;  // extent offset inside the dropping
  std::uint32_t crc32c = 0;           // stored extent checksum
  bool has_crc = false;               // false for legacy v1 index records
  /// Byte offset of each decoded frame inside the extent (valid iff
  /// `has_frame_table`): the index-side half of frame-range addressing.
  std::vector<std::uint64_t> frame_offsets;
  bool has_frame_table = false;  // false for records ingested without tables
};

class Indexer {
 public:
  explicit Indexer(const plfs::PlfsMount& mount) : mount_(mount) {}

  /// Locations of every dropping carrying `tag` in logical order.
  Result<std::vector<DatasetLocation>> locate(const std::string& logical_name,
                                              const Tag& tag) const;

  /// All user tags present in a container (reserved labels filtered out).
  Result<std::vector<Tag>> tags(const std::string& logical_name) const;

 private:
  const plfs::PlfsMount& mount_;
};

class IoRetriever {
 public:
  explicit IoRetriever(const plfs::PlfsMount& mount) : mount_(mount) {}

  /// Fetch the full subset image for `tag` (POSIX reads on the droppings the
  /// indexer located).  Reads are retried under the mount's retry policy and
  /// every extent is verified against its stored CRC32C -- a mismatch is a
  /// typed kCorruptData error, never silently served bytes.
  Result<std::vector<std::uint8_t>> retrieve(const std::string& logical_name,
                                             const Tag& tag) const;

  /// Fetch one located extent's bytes (same retry + CRC discipline as
  /// retrieve()).  The frame-range fast path uses this to read only the
  /// extents a block of frames actually touches.
  Result<std::vector<std::uint8_t>> retrieve_extent(const DatasetLocation& location) const;

 private:
  const plfs::PlfsMount& mount_;
};

}  // namespace ada::core
