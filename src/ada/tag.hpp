// Tags: the labels ADA's data pre-processor attaches to data subsets.
//
// The paper's GPCR deployment uses two: "p" (protein, the active data) and
// "m" (MISC, the inactive data).  Tags are short strings rather than single
// characters so the config-driven categorizer (Section 6 future work) can
// use richer names.
#pragma once

#include <string>

namespace ada::core {

using Tag = std::string;

inline const Tag kProteinTag = "p";
inline const Tag kMiscTag = "m";

/// Reserved label under which ADA persists the label file inside a PLFS
/// container; never returned by categorizers.
inline const Tag kLabelFileTag = "__labels__";

/// Reserved label for the original (compressed) input image, kept for
/// provenance / re-categorization.
inline const Tag kOriginalTag = "__original__";

}  // namespace ada::core
