// Config-driven categorization: the paper's Section 6 future work.
//
// "we plan to develop a dynamic data categorizing and labeling interface
//  through which a user can describe the structure of his raw data in a
//  configuration file."
//
// The config is line-oriented; rules are evaluated top-down, first match
// wins, `default` catches the rest:
//
//   # ADA categorizer schema
//   tag p  residues ALA ARG ASN           # explicit residue names
//   tag p  category protein               # or a whole chemical category
//   tag w  category water
//   tag hot names CA CB                   # match by atom name
//   default m
#pragma once

#include <string>

#include "ada/categorizer.hpp"
#include "common/result.hpp"

namespace ada::core {

/// A compiled schema: apply it to any System to get a LabelMap.
class CategorizerSchema {
 public:
  /// Parse config text; rejects unknown directives and malformed rules.
  static Result<CategorizerSchema> parse(const std::string& text);

  /// The TypeFn implementing this schema (first matching rule wins).
  TypeFn type_fn() const;

  /// Convenience: run Algorithm 1 under this schema.
  LabelMap categorize(const chem::System& system) const;

  std::size_t rule_count() const noexcept { return rules_.size(); }
  const Tag& default_tag() const noexcept { return default_tag_; }

 private:
  enum class Matcher { kResidues, kCategory, kAtomNames };
  struct Rule {
    Tag tag;
    Matcher matcher;
    std::vector<std::string> names;      // residue or atom names (upper-case)
    chem::Category category = chem::Category::kOther;
  };

  std::vector<Rule> rules_;
  Tag default_tag_ = kMiscTag;
};

}  // namespace ada::core
