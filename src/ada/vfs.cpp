#include "ada/vfs.hpp"

#include <filesystem>
#include <functional>

#include "common/binary_io.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "formats/pdb.hpp"

namespace ada::core {

namespace {

std::string basename_of(const std::string& path) {
  const auto slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool has_extension(const std::string& path, const char* extension) {
  // Extension of the basename only (common/strings.hpp), shared with
  // Ada::should_intercept: a dot in a directory component ("/runs.2026/x")
  // must never be parsed as the extension.
  return to_upper(path_extension(path)) == to_upper(extension);
}

}  // namespace

VfsShim::VfsShim(Ada& ada, std::string passthrough_root)
    : ada_(&ada), passthrough_root_(std::move(passthrough_root)) {
  std::error_code ec;
  std::filesystem::create_directories(passthrough_root_, ec);
  ADA_CHECK(!ec);
}

std::string VfsShim::host_path(const std::string& path) const {
  return passthrough_root_ + "/" + basename_of(path);
}

Status VfsShim::passthrough_write(const std::string& path, std::span<const std::uint8_t> bytes) {
  return write_file(host_path(path), bytes);
}

Result<std::vector<std::uint8_t>> VfsShim::passthrough_read(const std::string& path) const {
  return read_file(host_path(path));
}

Status VfsShim::write(const std::string& path, const std::string& app_id,
                      std::span<const std::uint8_t> bytes) {
  if (!ada_->should_intercept(path, app_id)) {
    return passthrough_write(path, bytes);
  }
  const std::string logical = basename_of(path);

  if (has_extension(path, ".pdb")) {
    // Structure files register the categorization context *and* remain
    // readable as plain files (VMD re-opens them for `mol new`).
    ADA_ASSIGN_OR_RETURN(chem::System system,
                         formats::parse_pdb(std::string(bytes.begin(), bytes.end())));
    structures_[logical] = std::make_shared<const chem::System>(std::move(system));
    current_guide_ = logical;
    return passthrough_write(path, bytes);
  }

  // Trapped trajectory: needs a guiding structure.
  if (current_guide_.empty()) {
    return failed_precondition("no structure registered: write the guiding .pdb first");
  }
  const auto& structure = structures_.at(current_guide_);
  return ada_->ingest(*structure, bytes, logical).status();
}

Result<std::vector<std::uint8_t>> VfsShim::read(const std::string& path,
                                                const std::string& app_id,
                                                const std::optional<Tag>& tag,
                                                const std::optional<FrameRange>& frames) const {
  if (frames.has_value() && !tag.has_value()) {
    return invalid_argument("frame-range read requires a tag: " + path);
  }
  const std::string logical = basename_of(path);
  if (ada_->has_dataset(logical) && ada_->should_intercept(path, app_id)) {
    if (tag.has_value()) {
      return frames.has_value() ? ada_->query(logical, *tag, *frames)
                                : ada_->query(logical, *tag);
    }
    // Untagged read of an ADA dataset: every user subset, in tag order (the
    // ADA(all) retrieval the paper benchmarks).  Pre-size via the indexer so
    // the concatenation never reallocates mid-copy (the same fix
    // Ada::PartialQuery::concat applies).
    ADA_ASSIGN_OR_RETURN(const auto tags, ada_->tags(logical));
    std::uint64_t total = 0;
    for (const Tag& t : tags) {
      ADA_ASSIGN_OR_RETURN(const auto bytes, ada_->subset_bytes(logical, t));
      total += bytes;
    }
    const unsigned fan = ada_->config().read_threads;
    if (fan > 1 && tags.size() > 1) {
      // Scatter-gather whole-dataset read: per-tag queries fan onto the
      // shared pool (each one keeps its own extent-level budget -- nested
      // run_batch is deadlock-free because the caller participates), then
      // concatenate in tag order, byte-identical to the serial loop.  The
      // first failure in tag order wins, as it would serially.
      std::vector<Result<std::vector<std::uint8_t>>> subsets(
          tags.size(), Result<std::vector<std::uint8_t>>(internal_error("not executed")));
      std::vector<std::function<void()>> work;
      work.reserve(tags.size());
      for (std::size_t i = 0; i < tags.size(); ++i) {
        work.push_back([this, &logical, &tags, &subsets, i] {
          subsets[i] = ada_->query(logical, tags[i]);
        });
      }
      ThreadPool::shared().run_batch(std::move(work), fan);
      std::vector<std::uint8_t> out;
      out.reserve(total);
      for (auto& subset : subsets) {
        if (!subset.is_ok()) return subset.error();
        out.insert(out.end(), subset.value().begin(), subset.value().end());
      }
      return out;
    }
    std::vector<std::uint8_t> out;
    out.reserve(total);
    for (const Tag& t : tags) {
      ADA_ASSIGN_OR_RETURN(const auto subset, ada_->query(logical, t));
      out.insert(out.end(), subset.begin(), subset.end());
    }
    return out;
  }
  if (tag.has_value()) {
    return failed_precondition("tagged read of a non-ADA path: " + path);
  }
  return passthrough_read(path);
}

Result<Ada::PartialQuery> VfsShim::read_degraded(const std::string& path,
                                                 const std::string& app_id) const {
  const std::string logical = basename_of(path);
  if (!ada_->has_dataset(logical) || !ada_->should_intercept(path, app_id)) {
    return failed_precondition("degraded read of a non-ADA path: " + path);
  }
  return ada_->query_degraded(logical);
}

Result<Ada::TailChunk> VfsShim::read_tail(const std::string& path, const std::string& app_id,
                                          const Tag& tag, std::uint64_t from_frame) const {
  const std::string logical = basename_of(path);
  if (!ada_->has_dataset(logical) || !ada_->should_intercept(path, app_id)) {
    return failed_precondition("tail read of a non-ADA path: " + path);
  }
  return ada_->query_tail(logical, tag, from_frame);
}

Status VfsShim::set_guide(const std::string& pdb_logical_name) {
  if (structures_.count(pdb_logical_name) == 0) {
    return not_found("no structure registered as " + pdb_logical_name);
  }
  current_guide_ = pdb_logical_name;
  return Status::ok();
}

std::vector<std::string> VfsShim::registered_structures() const {
  std::vector<std::string> out;
  out.reserve(structures_.size());
  for (const auto& [name, system] : structures_) out.push_back(name);
  return out;
}

}  // namespace ada::core
