#include "ada/schema_config.hpp"

#include <algorithm>
#include <sstream>

#include "common/strings.hpp"

namespace ada::core {

namespace {

Result<chem::Category> parse_category(const std::string& name) {
  for (int c = 0; c < chem::kCategoryCount; ++c) {
    const auto category = static_cast<chem::Category>(c);
    if (name == chem::category_name(category)) return category;
  }
  return invalid_argument("unknown category: " + name);
}

}  // namespace

Result<CategorizerSchema> CategorizerSchema::parse(const std::string& text) {
  CategorizerSchema schema;
  bool saw_default = false;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    // Strip comments and whitespace.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto fields = split_whitespace(line);
    if (fields.empty()) continue;
    const std::string where = " at line " + std::to_string(line_number);

    if (fields[0] == "default") {
      if (fields.size() != 2) return invalid_argument("default needs exactly one tag" + where);
      schema.default_tag_ = fields[1];
      saw_default = true;
      continue;
    }
    if (fields[0] != "tag") return invalid_argument("unknown directive '" + fields[0] + "'" + where);
    if (fields.size() < 4) {
      return invalid_argument("tag rule needs: tag <name> <matcher> <args...>" + where);
    }

    Rule rule;
    rule.tag = fields[1];
    const std::string& matcher = fields[2];
    std::vector<std::string> args(fields.begin() + 3, fields.end());
    if (matcher == "residues") {
      rule.matcher = Matcher::kResidues;
      for (auto& a : args) a = to_upper(a);
      rule.names = std::move(args);
    } else if (matcher == "names") {
      rule.matcher = Matcher::kAtomNames;
      for (auto& a : args) a = to_upper(a);
      rule.names = std::move(args);
    } else if (matcher == "category") {
      if (args.size() != 1) return invalid_argument("category matcher takes one name" + where);
      rule.matcher = Matcher::kCategory;
      ADA_ASSIGN_OR_RETURN(rule.category, parse_category(args[0]));
    } else {
      return invalid_argument("unknown matcher '" + matcher + "'" + where);
    }
    schema.rules_.push_back(std::move(rule));
  }
  if (schema.rules_.empty() && !saw_default) {
    return invalid_argument("schema has no rules and no default");
  }
  return schema;
}

TypeFn CategorizerSchema::type_fn() const {
  // Capture by value: the schema may outlive this call's receiver.
  const auto rules = rules_;
  const Tag fallback = default_tag_;
  return [rules, fallback](const chem::Atom& atom, chem::Category category) -> Tag {
    for (const Rule& rule : rules) {
      switch (rule.matcher) {
        case Matcher::kResidues: {
          const std::string residue = to_upper(trim(atom.residue_name));
          if (std::find(rule.names.begin(), rule.names.end(), residue) != rule.names.end()) {
            return rule.tag;
          }
          break;
        }
        case Matcher::kAtomNames: {
          const std::string name = to_upper(trim(atom.name));
          if (std::find(rule.names.begin(), rule.names.end(), name) != rule.names.end()) {
            return rule.tag;
          }
          break;
        }
        case Matcher::kCategory:
          if (category == rule.category) return rule.tag;
          break;
      }
    }
    return fallback;
  };
}

LabelMap CategorizerSchema::categorize(const chem::System& system) const {
  return core::categorize(system, type_fn());
}

}  // namespace ada::core
