// Data categorizer + labeler: the paper's Algorithm 1.
//
// The categorizer walks the atoms of a structure file in order, asks
// "GetType" for each atom's tag, and builds per-tag lists of [begin, end)
// index ranges -- the label map.  Run-length construction (lines 10-24 of
// Algorithm 1) makes the label file proportional to the number of tag
// *transitions*, not atoms.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ada/tag.hpp"
#include "chem/selection.hpp"
#include "chem/system.hpp"
#include "common/result.hpp"

namespace ada::core {

/// The labeler's product: tag -> atom-index ranges.
struct LabelMap {
  std::uint32_t atom_count = 0;
  std::map<Tag, chem::Selection> groups;

  /// Selection for `tag`; kNotFound when absent.
  Result<chem::Selection> selection(const Tag& tag) const;

  /// Number of atoms labeled `tag` (0 when absent).
  std::uint64_t tag_atoms(const Tag& tag) const;

  /// Tags in map order.
  std::vector<Tag> tags() const;

  /// True when every atom in [0, atom_count) carries exactly one tag.
  bool is_partition() const;

  friend bool operator==(const LabelMap&, const LabelMap&) = default;
};

/// "GetType" of Algorithm 1: maps one atom (with its derived category) to a tag.
using TypeFn = std::function<Tag(const chem::Atom&, chem::Category)>;

/// Algorithm 1: single pass over the atoms, run-length labeling.
LabelMap categorize(const chem::System& system, const TypeFn& get_type);

/// The paper's GPCR deployment: protein -> "p", everything else -> "m".
LabelMap categorize_protein_misc(const chem::System& system);

/// Fine-grained tags per chemical category ('p','w','l','i','g','n','o'),
/// used by the Section 4.1 fine-grained viewing feature.
LabelMap categorize_fine_grained(const chem::System& system);

}  // namespace ada::core
