#include "ada/indexer.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/admission.hpp"
#include "common/binary_io.hpp"
#include "common/crc32c.hpp"
#include "common/retry.hpp"
#include "common/thread_pool.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace ada::core {

Result<std::vector<DatasetLocation>> Indexer::locate(const std::string& logical_name,
                                                     const Tag& tag) const {
  ADA_ASSIGN_OR_RETURN(auto records, mount_.read_index(logical_name));
  std::erase_if(records, [&](const plfs::IndexRecord& r) { return r.label != tag; });
  // Live-streamed containers publish a sealed-frame watermark; only extents
  // entirely below it are safe to serve (the open tail may be mid-flush on
  // some tags).  The clamp works in ANY index/state read interleaving:
  // records carry their own global frame span, so a newer index read against
  // an older watermark simply hides the not-yet-published tail.  A corrupt
  // state file is an error -- never silently "everything sealed".
  ADA_ASSIGN_OR_RETURN(const auto state, mount_.read_stream_state(logical_name));
  if (state.has_value()) {
    std::erase_if(records, [&](const plfs::IndexRecord& r) {
      return r.has_frame_base() && r.frame_base + r.frame_count > state->sealed_frames;
    });
  }
  if (records.empty()) {
    return not_found("no subset tagged '" + tag + "' in " + logical_name);
  }
  std::sort(records.begin(), records.end(),
            [](const plfs::IndexRecord& a, const plfs::IndexRecord& b) {
              return a.logical_offset < b.logical_offset;
            });
  std::vector<DatasetLocation> out;
  out.reserve(records.size());
  for (plfs::IndexRecord& record : records) {
    DatasetLocation location;
    location.backend = record.backend;
    location.backend_name = mount_.backend(record.backend).name;
    location.host_path =
        mount_.backend(record.backend).host_root + "/" + logical_name + "/" + record.dropping;
    location.bytes = record.length;
    location.physical_offset = record.physical_offset;
    location.crc32c = record.crc32c;
    location.has_crc = record.has_checksum();
    location.has_frame_table = record.has_frame_table();
    location.frame_offsets = std::move(record.frame_offsets);
    location.has_frame_base = record.has_frame_base();
    location.frame_base = record.frame_base;
    location.frame_count = record.frame_count;
    out.push_back(std::move(location));
  }
  return out;
}

Result<std::vector<Tag>> Indexer::tags(const std::string& logical_name) const {
  ADA_ASSIGN_OR_RETURN(const auto records, mount_.read_index(logical_name));
  std::vector<Tag> out;
  for (const plfs::IndexRecord& record : records) {
    if (record.label == kLabelFileTag || record.label == kOriginalTag) continue;
    if (std::find(out.begin(), out.end(), record.label) == out.end()) out.push_back(record.label);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<std::uint8_t>> IoRetriever::retrieve(const std::string& logical_name,
                                                        const Tag& tag) const {
  const obs::TraceSpan trace("plfs_read", tag);
  Indexer indexer(mount_);
  // The indexer resolves paths; the retriever performs the reads.
  ADA_ASSIGN_OR_RETURN(const auto locations, indexer.locate(logical_name, tag));
  ADA_ASSIGN_OR_RETURN(auto out, retrieve(std::span<const DatasetLocation>(locations)));
  obs::trace_counter("plfs.read.bytes", out.size());
  return out;
}

Result<std::vector<std::uint8_t>> IoRetriever::retrieve(
    std::span<const DatasetLocation> locations) const {
  if (!options_.parallel() || locations.size() <= 1) {
    // The serial path: one extent at a time, read then verified, appended in
    // logical order -- byte-for-byte the pre-scatter-gather retriever.
    std::vector<std::uint8_t> out;
    for (const DatasetLocation& location : locations) {
      ADA_ASSIGN_OR_RETURN(const auto extent, retrieve_extent(location));
      out.insert(out.end(), extent.begin(), extent.end());
    }
    return out;
  }
  ADA_ASSIGN_OR_RETURN(const auto extents, retrieve_extents(locations));
  // Ordered merge (the formats::merge_raw_images shape): tasks completed in
  // whatever order the pool ran them, but assembly is by location index, so
  // the image is identical to the serial concatenation.
  std::size_t total = 0;
  for (const auto& extent : extents) total += extent.size();
  std::vector<std::uint8_t> out;
  out.reserve(total);
  for (const auto& extent : extents) out.insert(out.end(), extent.begin(), extent.end());
  return out;
}

Result<std::vector<std::vector<std::uint8_t>>> IoRetriever::retrieve_extents(
    std::span<const DatasetLocation> locations) const {
  if (!options_.parallel() || locations.size() <= 1) {
    std::vector<std::vector<std::uint8_t>> out;
    out.reserve(locations.size());
    for (const DatasetLocation& location : locations) {
      ADA_ASSIGN_OR_RETURN(auto extent, retrieve_extent(location));
      out.push_back(std::move(extent));
    }
    return out;
  }

  ADA_OBS_COUNT("retrieve.sg.calls", 1);
  ADA_OBS_COUNT("retrieve.sg.extents", locations.size());

  // Group extents by owning backend (locality: within a backend, reads stay
  // in logical order -- sequential on a spinning server), then interleave
  // the groups round-robin so the pool's in-order task claim spreads across
  // backends instead of queueing behind one server's admission window.
  std::uint32_t backends = 0;
  for (const DatasetLocation& location : locations) {
    backends = std::max(backends, location.backend + 1);
  }
  std::vector<std::vector<std::size_t>> by_backend(backends);
  for (std::size_t i = 0; i < locations.size(); ++i) {
    by_backend[locations[i].backend].push_back(i);
  }
  std::vector<std::size_t> order;
  order.reserve(locations.size());
  for (std::size_t round = 0; order.size() < locations.size(); ++round) {
    for (const auto& group : by_backend) {
      if (round < group.size()) order.push_back(group[round]);
    }
  }

  // Per-backend admission window: a query may keep at most queue_depth
  // extent reads in flight against any one backend.  A task holds exactly
  // one slot while it reads, so blocked acquires always wait on running
  // tasks and the batch drains (common/admission.hpp).
  AdmissionWindow window(backends, options_.queue_depth);
  std::vector<Result<std::vector<std::uint8_t>>> results(
      locations.size(),
      Result<std::vector<std::uint8_t>>(internal_error("extent read not executed")));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(order.size());
  for (const std::size_t index : order) {
    tasks.push_back([this, &locations, &results, &window, index] {
      const DatasetLocation& location = locations[index];
      const std::uint64_t waits = window.acquire(location.backend);
      if (waits != 0) ADA_OBS_COUNT("retrieve.sg.admission_waits", waits);
      {
        // Read + CRC verify pipelined on the worker: while this extent
        // transfers, siblings verify, so transfer overlaps decode.
        const obs::TraceSpan span("sg_extent", location.backend_name);
        results[index] = retrieve_extent(location);
      }
      window.release(location.backend);
    });
  }
  ThreadPool::shared().run_batch(std::move(tasks), options_.threads);

  // First failure in *logical* order wins -- the same error the serial loop
  // would have stopped on.
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(locations.size());
  std::uint64_t bytes = 0;
  for (auto& result : results) {
    if (!result.is_ok()) return result.error();
    bytes += result.value().size();
    out.push_back(std::move(result).value());
  }
  ADA_OBS_COUNT("retrieve.sg.bytes", bytes);
  return out;
}

Result<std::vector<std::uint8_t>> IoRetriever::retrieve_extent(
    const DatasetLocation& location) const {
  ADA_ASSIGN_OR_RETURN(const auto bytes,
                       retry_sync("retrieve_dropping", mount_.retry_policy(), [&] {
                         return plfs::read_dropping_file(location.host_path);
                       }));
  if (bytes.size() < location.physical_offset + location.bytes) {
    return corrupt_data("dropping " + location.host_path + " size mismatch");
  }
  const auto* extent = bytes.data() + location.physical_offset;
  if (location.has_crc && crc32c(extent, location.bytes) != location.crc32c) {
    ADA_OBS_COUNT("plfs.crc_mismatch", 1);
    return corrupt_data("checksum mismatch on " + location.host_path);
  }
  return std::vector<std::uint8_t>(extent, extent + location.bytes);
}

}  // namespace ada::core
