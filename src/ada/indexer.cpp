#include "ada/indexer.hpp"

#include <algorithm>

#include "common/binary_io.hpp"
#include "obs/events.hpp"

namespace ada::core {

Result<std::vector<DatasetLocation>> Indexer::locate(const std::string& logical_name,
                                                     const Tag& tag) const {
  ADA_ASSIGN_OR_RETURN(auto records, mount_.read_index(logical_name));
  std::erase_if(records, [&](const plfs::IndexRecord& r) { return r.label != tag; });
  if (records.empty()) {
    return not_found("no subset tagged '" + tag + "' in " + logical_name);
  }
  std::sort(records.begin(), records.end(),
            [](const plfs::IndexRecord& a, const plfs::IndexRecord& b) {
              return a.logical_offset < b.logical_offset;
            });
  std::vector<DatasetLocation> out;
  out.reserve(records.size());
  for (const plfs::IndexRecord& record : records) {
    DatasetLocation location;
    location.backend = record.backend;
    location.backend_name = mount_.backend(record.backend).name;
    location.host_path =
        mount_.backend(record.backend).host_root + "/" + logical_name + "/" + record.dropping;
    location.bytes = record.length;
    out.push_back(std::move(location));
  }
  return out;
}

Result<std::vector<Tag>> Indexer::tags(const std::string& logical_name) const {
  ADA_ASSIGN_OR_RETURN(const auto records, mount_.read_index(logical_name));
  std::vector<Tag> out;
  for (const plfs::IndexRecord& record : records) {
    if (record.label == kLabelFileTag || record.label == kOriginalTag) continue;
    if (std::find(out.begin(), out.end(), record.label) == out.end()) out.push_back(record.label);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<std::uint8_t>> IoRetriever::retrieve(const std::string& logical_name,
                                                        const Tag& tag) const {
  const obs::TraceSpan trace("plfs_read", tag);
  Indexer indexer(mount_);
  // The indexer resolves paths; the retriever performs the reads.
  ADA_ASSIGN_OR_RETURN(const auto locations, indexer.locate(logical_name, tag));
  std::vector<std::uint8_t> out;
  for (const DatasetLocation& location : locations) {
    ADA_ASSIGN_OR_RETURN(const auto bytes, read_file(location.host_path));
    if (bytes.size() != location.bytes) {
      return corrupt_data("dropping " + location.host_path + " size mismatch");
    }
    out.insert(out.end(), bytes.begin(), bytes.end());
  }
  obs::trace_counter("plfs.read.bytes", out.size());
  return out;
}

}  // namespace ada::core
