#include "ada/indexer.hpp"

#include <algorithm>

#include "common/binary_io.hpp"
#include "common/crc32c.hpp"
#include "common/retry.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace ada::core {

Result<std::vector<DatasetLocation>> Indexer::locate(const std::string& logical_name,
                                                     const Tag& tag) const {
  ADA_ASSIGN_OR_RETURN(auto records, mount_.read_index(logical_name));
  std::erase_if(records, [&](const plfs::IndexRecord& r) { return r.label != tag; });
  if (records.empty()) {
    return not_found("no subset tagged '" + tag + "' in " + logical_name);
  }
  std::sort(records.begin(), records.end(),
            [](const plfs::IndexRecord& a, const plfs::IndexRecord& b) {
              return a.logical_offset < b.logical_offset;
            });
  std::vector<DatasetLocation> out;
  out.reserve(records.size());
  for (plfs::IndexRecord& record : records) {
    DatasetLocation location;
    location.backend = record.backend;
    location.backend_name = mount_.backend(record.backend).name;
    location.host_path =
        mount_.backend(record.backend).host_root + "/" + logical_name + "/" + record.dropping;
    location.bytes = record.length;
    location.physical_offset = record.physical_offset;
    location.crc32c = record.crc32c;
    location.has_crc = record.has_checksum();
    location.has_frame_table = record.has_frame_table();
    location.frame_offsets = std::move(record.frame_offsets);
    out.push_back(std::move(location));
  }
  return out;
}

Result<std::vector<Tag>> Indexer::tags(const std::string& logical_name) const {
  ADA_ASSIGN_OR_RETURN(const auto records, mount_.read_index(logical_name));
  std::vector<Tag> out;
  for (const plfs::IndexRecord& record : records) {
    if (record.label == kLabelFileTag || record.label == kOriginalTag) continue;
    if (std::find(out.begin(), out.end(), record.label) == out.end()) out.push_back(record.label);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<std::uint8_t>> IoRetriever::retrieve(const std::string& logical_name,
                                                        const Tag& tag) const {
  const obs::TraceSpan trace("plfs_read", tag);
  Indexer indexer(mount_);
  // The indexer resolves paths; the retriever performs the reads.
  ADA_ASSIGN_OR_RETURN(const auto locations, indexer.locate(logical_name, tag));
  std::vector<std::uint8_t> out;
  for (const DatasetLocation& location : locations) {
    ADA_ASSIGN_OR_RETURN(const auto extent, retrieve_extent(location));
    out.insert(out.end(), extent.begin(), extent.end());
  }
  obs::trace_counter("plfs.read.bytes", out.size());
  return out;
}

Result<std::vector<std::uint8_t>> IoRetriever::retrieve_extent(
    const DatasetLocation& location) const {
  ADA_ASSIGN_OR_RETURN(const auto bytes,
                       retry_sync("retrieve_dropping", mount_.retry_policy(), [&] {
                         return plfs::read_dropping_file(location.host_path);
                       }));
  if (bytes.size() < location.physical_offset + location.bytes) {
    return corrupt_data("dropping " + location.host_path + " size mismatch");
  }
  const auto* extent = bytes.data() + location.physical_offset;
  if (location.has_crc && crc32c(extent, location.bytes) != location.crc32c) {
    ADA_OBS_COUNT("plfs.crc_mismatch", 1);
    return corrupt_data("checksum mismatch on " + location.host_path);
  }
  return std::vector<std::uint8_t>(extent, extent + location.bytes);
}

}  // namespace ada::core
