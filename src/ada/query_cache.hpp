// Query-side subset cache: the memory tier of the read path.
//
// Visualization workloads re-request the same tagged subsets across
// animation replays (paper Section 3.5: the repeated decompress-and-filter
// VMD otherwise pays per replay).  QueryCache sits between Ada::query() and
// the I/O retriever and keeps recently served, CRC-verified subset images in
// memory under a byte budget, so a repeated-tag workload turns O(extents)
// disk reads per query into one memory hit.
//
// Design:
//   * Shard-locked LRU.  Entries are keyed by (logical_name, tag) and live
//     in one of N shards chosen by hashing the logical name, so concurrent
//     queries of different datasets never contend and invalidation of one
//     dataset scans exactly one shard.  Each shard owns budget/N bytes.
//   * Refcounted entries.  lookup() hands out a shared_ptr to immutable
//     bytes; eviction merely drops the cache's reference, so an in-flight
//     reader is never invalidated mid-copy -- there is no entry lock to
//     hold across the copy-out.
//   * Safe invalidation.  Every entry records the container's mutation
//     generation (plfs::PlfsMount::mutation_generation) observed *before*
//     the backing read.  A lookup whose caller observes a newer generation
//     treats the entry as stale, drops it, and reports a miss -- so every
//     write-path mutation (re-ingest/overwrite, ingest_batch, IngestStream
//     chunk flushes and seal, `plfs fsck --repair`) invalidates without the
//     mutator knowing the cache exists.  explicit invalidate() is layered
//     on top for same-object overwrite.
//   * Verified fills only.  The cache never performs I/O; Ada inserts only
//     results that passed the retriever's per-extent CRC32C verification,
//     so an injected fault can fail a query but never poison the cache.
//   * Single-flight fills.  lookup_or_fill() hands exactly one caller per
//     (key, generation) a leadership claim; concurrent cold misses wait for
//     the leader's insert and share its image instead of each paying a
//     duplicate backend read (the duplicate_fills counter watches for
//     anything that still races around this).
//
// Observability: cache.hits / cache.misses / cache.evictions counters and a
// cache.bytes gauge (docs/observability.md); internal stats are kept
// unconditionally so benches work with metrics off.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ada/tag.hpp"

namespace ada::core {

class QueryCache {
 public:
  /// Immutable cached subset image.  Holders keep the bytes alive across
  /// eviction; the pointed-to vector is never mutated after insert.
  using Image = std::shared_ptr<const std::vector<std::uint8_t>>;

  /// Point-in-time usage numbers (hits/misses/evictions are cumulative).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
    /// Inserts that found a live entry for the same key and generation
    /// already present: each one means a concurrent cold miss paid a full
    /// CRC-verified backend read whose bytes were already in memory.
    /// lookup_or_fill() keeps this at zero; a nonzero count means some
    /// path raced plain lookup()+insert() around the single flight.
    std::uint64_t duplicate_fills = 0;
    std::uint64_t bytes = 0;
    std::uint64_t entries = 0;
  };

  /// `budget_bytes` bounds the cached payload bytes across all shards
  /// (keys and bookkeeping are not counted).  A zero budget caches nothing.
  explicit QueryCache(std::uint64_t budget_bytes, std::size_t shard_count = 8);

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// The cached image for (logical_name, tag), or null on miss.  `generation`
  /// is the container's current mutation generation as observed by the
  /// caller; an entry recorded under an older generation is stale -- it is
  /// dropped and the lookup misses.
  Image lookup(const std::string& logical_name, const Tag& tag, std::uint64_t generation);

 private:
  struct Shard;
  /// One in-flight backend fill that concurrent misses wait on instead of
  /// each paying their own read (the duplicate-fill race).
  struct Fill {
    std::uint64_t generation = 0;
    bool resolved = false;
    std::condition_variable cv;
  };

 public:
  /// RAII leadership claim on one in-flight fill (see lookup_or_fill).
  /// Destruction -- or reset() right after the insert -- resolves the
  /// claim: waiters wake, re-check the cache, and hit on the leader's
  /// inserted image (or elect the next leader if the read failed).
  class FillGuard {
   public:
    FillGuard() = default;
    FillGuard(FillGuard&& other) noexcept { *this = std::move(other); }
    FillGuard& operator=(FillGuard&& other) noexcept {
      if (this != &other) {
        reset();
        cache_ = other.cache_;
        shard_ = other.shard_;
        key_ = std::move(other.key_);
        fill_ = std::move(other.fill_);
        other.cache_ = nullptr;
        other.shard_ = nullptr;
        other.fill_ = nullptr;
      }
      return *this;
    }
    FillGuard(const FillGuard&) = delete;
    FillGuard& operator=(const FillGuard&) = delete;
    ~FillGuard() { reset(); }

    /// Holding a claim means the caller is the unique leader for its key.
    explicit operator bool() const noexcept { return fill_ != nullptr; }

    /// Resolve the claim now instead of at scope exit.
    void reset();

   private:
    friend class QueryCache;
    FillGuard(QueryCache* cache, Shard* shard, std::string key, std::shared_ptr<Fill> fill)
        : cache_(cache), shard_(shard), key_(std::move(key)), fill_(std::move(fill)) {}

    QueryCache* cache_ = nullptr;
    Shard* shard_ = nullptr;
    std::string key_;
    std::shared_ptr<Fill> fill_;
  };

  /// Single-flight lookup.  A hit behaves like lookup() -- possibly after
  /// blocking until a concurrent fill of the same (key, generation) lands.
  /// A true miss arms `*guard`: the caller is the unique leader expected to
  /// read the bytes and insert() them; every concurrent caller of the same
  /// key+generation waits on the guard instead of duplicating the backend
  /// read.  A leader whose read fails just drops the guard -- the first
  /// waiter is elected the new leader and retries.  A caller observing a
  /// newer generation never waits on a stale flight: it displaces the
  /// directory slot and fills independently.
  Image lookup_or_fill(const std::string& logical_name, const Tag& tag,
                       std::uint64_t generation, FillGuard* guard);

  /// Insert a verified subset image recorded under `generation` (observed
  /// BEFORE the backing read, so a write racing the read leaves the entry
  /// detectably stale).  Oversized images (> one shard's budget) are not
  /// cached; least-recently-used entries are evicted until the image fits.
  /// Returns the refcounted image now (or still) cached under the key --
  /// callers that serve the response from the return value share one
  /// allocation with every other holder.  If a live entry with the same
  /// generation is already present, the bytes just read were redundant:
  /// the existing image is kept, returned, and counted as a duplicate fill.
  Image insert(const std::string& logical_name, const Tag& tag, std::uint64_t generation,
               std::vector<std::uint8_t> bytes);

  /// Drop every entry of one dataset (all tags).
  void invalidate(const std::string& logical_name);

  /// Drop everything.
  void clear();

  std::uint64_t budget_bytes() const noexcept { return budget_; }
  Stats stats() const;

 private:
  struct Entry {
    std::string key;  // logical_name + '\0' + tag
    std::string logical_name;
    std::uint64_t generation = 0;
    Image image;
  };

  /// One lock domain: LRU list (front = most recent) + key directory +
  /// the in-flight fill directory.
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;
    std::map<std::string, std::list<Entry>::iterator> by_key;
    std::map<std::string, std::shared_ptr<Fill>> fills;
    std::uint64_t bytes = 0;
  };

  Shard& shard_of(const std::string& logical_name);
  /// Hit-or-stale-drop under the shard lock.  Sets `*stale_drop` when an
  /// older-generation entry was evicted.
  Image locked_lookup(Shard& shard, const std::string& key, std::uint64_t generation,
                      bool* stale_drop);
  /// Remove `fill` from the shard's flight directory (if still registered)
  /// and wake its waiters.
  void resolve_fill(Shard& shard, const std::string& key, const std::shared_ptr<Fill>& fill);
  /// Drop LRU entries until `needed` more bytes fit in `shard`.  Caller
  /// holds the shard mutex.
  void evict_for(Shard& shard, std::uint64_t needed);
  /// Publish the current payload size to the cache.bytes gauge.
  void publish_bytes() const;

  std::uint64_t budget_;
  std::uint64_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Cumulative stats, kept even with obs disabled (the bench reads them).
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> evictions_{0};
  mutable std::atomic<std::uint64_t> invalidations_{0};
  mutable std::atomic<std::uint64_t> duplicate_fills_{0};
};

}  // namespace ada::core
