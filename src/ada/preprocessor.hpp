// Data pre-processor: decompressor + subset splitter.
//
// The pipeline of paper Fig. 5 between "dataset arrives" and "dispatch":
// the decompressor expands the .xtc image, and the categorizer/labeler's
// LabelMap drives the split of every frame into per-tag RAW subsets.  The
// output subsets are *decompressed* -- that is ADA's central trade: spend
// storage-node CPU once at ingest so compute nodes never decompress again.
//
// Every XTC frame is a self-delimiting XDR item that decodes independently,
// so split() can fan frame ranges out to the shared thread pool: a cheap
// header-only boundary scan produces the frame extents, each worker decodes
// its range into thread-local per-tag shard writers, and an ordered merge
// concatenates the shards -- byte-identical to the serial path (locked down
// by the e2e differential harness and the parallel-split property test).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "ada/categorizer.hpp"
#include "ada/tag.hpp"
#include "common/result.hpp"

namespace ada::core {

/// Measured facts about one ingest (functional plane).
struct PreprocessStats {
  std::uint32_t frames = 0;
  std::uint32_t atoms = 0;
  std::uint64_t compressed_bytes = 0;            // input .xtc image size
  std::map<Tag, std::uint64_t> subset_bytes;     // output RAW subset sizes
  std::map<Tag, std::uint64_t> subset_atoms;     // atoms per subset
  double decompress_wall_seconds = 0.0;          // real CPU time spent decoding
};

class DataPreProcessor {
 public:
  /// `labels` must partition [0, atom_count).
  explicit DataPreProcessor(LabelMap labels);

  const LabelMap& labels() const noexcept { return labels_; }

  /// Decompress an XTC image and split it into per-tag RAW trajectory
  /// images.  Every frame must carry exactly the label map's atom count.
  /// `threads` is the concurrency budget: 1 (the default) decodes serially
  /// on the calling thread; 0 uses every shared-pool worker; N > 1 fans
  /// frame ranges out to at most N concurrent workers.  The output images
  /// are byte-identical for every thread count.
  Result<std::map<Tag, std::vector<std::uint8_t>>> split(
      std::span<const std::uint8_t> xtc_image, PreprocessStats* stats = nullptr,
      unsigned threads = 1) const;

 private:
  Result<std::map<Tag, std::vector<std::uint8_t>>> split_serial(
      std::span<const std::uint8_t> xtc_image, PreprocessStats* stats) const;
  Result<std::map<Tag, std::vector<std::uint8_t>>> split_parallel(
      std::span<const std::uint8_t> xtc_image, PreprocessStats* stats, unsigned budget,
      unsigned threads) const;

  LabelMap labels_;
};

}  // namespace ada::core
