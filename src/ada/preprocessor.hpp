// Data pre-processor: decompressor + subset splitter.
//
// The pipeline of paper Fig. 5 between "dataset arrives" and "dispatch":
// the decompressor expands the .xtc image, and the categorizer/labeler's
// LabelMap drives the split of every frame into per-tag RAW subsets.  The
// output subsets are *decompressed* -- that is ADA's central trade: spend
// storage-node CPU once at ingest so compute nodes never decompress again.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "ada/categorizer.hpp"
#include "ada/tag.hpp"
#include "common/result.hpp"

namespace ada::core {

/// Measured facts about one ingest (functional plane).
struct PreprocessStats {
  std::uint32_t frames = 0;
  std::uint32_t atoms = 0;
  std::uint64_t compressed_bytes = 0;            // input .xtc image size
  std::map<Tag, std::uint64_t> subset_bytes;     // output RAW subset sizes
  std::map<Tag, std::uint64_t> subset_atoms;     // atoms per subset
  double decompress_wall_seconds = 0.0;          // real CPU time spent decoding
};

class DataPreProcessor {
 public:
  /// `labels` must partition [0, atom_count).
  explicit DataPreProcessor(LabelMap labels);

  const LabelMap& labels() const noexcept { return labels_; }

  /// Decompress an XTC image and split it into per-tag RAW trajectory
  /// images.  Every frame must carry exactly the label map's atom count.
  Result<std::map<Tag, std::vector<std::uint8_t>>> split(
      std::span<const std::uint8_t> xtc_image, PreprocessStats* stats = nullptr) const;

 private:
  LabelMap labels_;
};

}  // namespace ada::core
