#include "ada/categorizer.hpp"

#include "obs/trace.hpp"

namespace ada::core {

Result<chem::Selection> LabelMap::selection(const Tag& tag) const {
  const auto it = groups.find(tag);
  if (it == groups.end()) return not_found("no atoms labeled '" + tag + "'");
  return it->second;
}

std::uint64_t LabelMap::tag_atoms(const Tag& tag) const {
  const auto it = groups.find(tag);
  return it == groups.end() ? 0 : it->second.count();
}

std::vector<Tag> LabelMap::tags() const {
  std::vector<Tag> out;
  out.reserve(groups.size());
  for (const auto& [tag, selection] : groups) out.push_back(tag);
  return out;
}

bool LabelMap::is_partition() const {
  std::uint64_t total = 0;
  chem::Selection all;
  for (const auto& [tag, selection] : groups) {
    total += selection.count();
    all = all.unite(selection);
  }
  // Union covering [0, atom_count) with counts summing to atom_count means
  // no overlap and no hole.
  return total == atom_count && all == chem::Selection::all(atom_count);
}

LabelMap categorize(const chem::System& system, const TypeFn& get_type) {
  // Algorithm 1 from the paper, with `labeler` == LabelMap::groups.
  const obs::ScopedTimer span("categorize");
  LabelMap labeler;
  labeler.atom_count = system.atom_count();

  std::uint32_t offset = 0;
  std::uint32_t begin = 0;
  Tag prev_tag;
  bool have_prev = false;

  auto flush_run = [&](std::uint32_t end) {
    labeler.groups[prev_tag].add_run({begin, end});
  };

  for (std::uint32_t i = 0; i < system.atom_count(); ++i) {
    const Tag tag = get_type(system.atom(i), system.category(i));
    if (!have_prev) {
      prev_tag = tag;
      have_prev = true;
    } else if (tag != prev_tag) {
      flush_run(offset);
      prev_tag = tag;
      begin = offset;
    }
    ++offset;
  }
  if (have_prev) flush_run(offset);
  return labeler;
}

LabelMap categorize_protein_misc(const chem::System& system) {
  return categorize(system, [](const chem::Atom&, chem::Category category) {
    return category == chem::Category::kProtein ? kProteinTag : kMiscTag;
  });
}

LabelMap categorize_fine_grained(const chem::System& system) {
  return categorize(system, [](const chem::Atom&, chem::Category category) {
    return Tag(1, chem::category_tag(category));
  });
}

}  // namespace ada::core
