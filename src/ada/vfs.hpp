// VfsShim: the file-system interception surface of the middleware.
//
// The paper deploys ADA "between VMD and an existing file system": writes of
// .pdb/.xtc files from the target application are trapped and pre-processed;
// everything else passes through to the underlying file system untouched.
// Kernel plumbing (FUSE) is replaced by a library call with identical
// decision logic (see DESIGN.md substitution table); applications use plain
// whole-file read/write with an application id.
//
// Pairing rule (paper Section 2.1: "One .xtc file is guided by a
// corresponding .pdb file.  Besides, one .pdb file can guide multiple .xtc
// files"): a trapped .pdb registers its structure; subsequent trapped .xtc
// writes are categorized under the most recently registered structure, or
// under an explicitly named guide.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "ada/middleware.hpp"
#include "chem/system.hpp"
#include "common/result.hpp"

namespace ada::core {

class VfsShim {
 public:
  /// `passthrough_root`: host directory backing non-intercepted paths.
  VfsShim(Ada& ada, std::string passthrough_root);

  /// Write a whole file as application `app_id`.
  ///  - intercepted .pdb: structure parsed + registered (and passed through);
  ///  - intercepted .xtc: ingested through ADA under the guiding structure;
  ///  - anything else: passed through to the host file system.
  Status write(const std::string& path, const std::string& app_id,
               std::span<const std::uint8_t> bytes);

  /// Read a whole file.  With a tag, the read resolves through ADA's indexer
  /// to the decompressed subset; without one, an ADA dataset reads back every
  /// subset's bytes in label order, and non-ADA paths pass through.  With
  /// `frames`, only the selected frames of the tagged subset are returned
  /// (Ada frame-range query); a frame selection requires a tag -- the
  /// untagged concatenation has no single frame axis.
  Result<std::vector<std::uint8_t>> read(const std::string& path, const std::string& app_id,
                                         const std::optional<Tag>& tag = std::nullopt,
                                         const std::optional<FrameRange>& frames =
                                             std::nullopt) const;

  /// Degraded read of an ADA dataset: the surviving subsets plus a typed
  /// failure per lost tag (Ada::query_degraded semantics).  Non-ADA paths
  /// fail with kFailedPrecondition -- passthrough reads have no partial mode.
  Result<Ada::PartialQuery> read_degraded(const std::string& path,
                                          const std::string& app_id) const;

  /// Tail read of a live-streamed ADA dataset: the frames of `tag` sealed at
  /// or after `from_frame` (Ada::query_tail semantics -- poll until
  /// `sealed && frames == 0`).  Non-ADA paths fail with kFailedPrecondition.
  Result<Ada::TailChunk> read_tail(const std::string& path, const std::string& app_id,
                                   const Tag& tag, std::uint64_t from_frame) const;

  /// Explicitly bind future .xtc ingests to the structure registered under
  /// `pdb_logical_name` (overrides most-recent pairing).
  Status set_guide(const std::string& pdb_logical_name);

  /// Structures currently registered (logical .pdb names).
  std::vector<std::string> registered_structures() const;

  bool was_intercepted(const std::string& logical_name) const {
    return ada_->has_dataset(logical_name);
  }

 private:
  Status passthrough_write(const std::string& path, std::span<const std::uint8_t> bytes);
  Result<std::vector<std::uint8_t>> passthrough_read(const std::string& path) const;
  std::string host_path(const std::string& path) const;

  Ada* ada_;
  std::string passthrough_root_;
  std::map<std::string, std::shared_ptr<const chem::System>> structures_;
  std::string current_guide_;  // logical name of the active structure
};

}  // namespace ada::core
