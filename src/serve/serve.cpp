#include "serve/serve.hpp"

#include <algorithm>
#include <future>
#include <utility>

#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace ada::serve {

namespace {

// Request identity: the single-flight key and the admission controller's
// size-learning key.  '\x01'..'\x03' cannot appear in a label tag (the label
// file is line-oriented text), so the kinds can never collide.
std::string request_key(const Request& request) {
  std::string key = request.logical_name;
  key += '\0';
  switch (request.kind) {
    case RequestKind::kSubset:
      key += request.tag;
      break;
    case RequestKind::kRange:
      key += request.tag;
      key += '\x01';
      key += std::to_string(request.range.begin) + ':' + std::to_string(request.range.end) +
             ':' + std::to_string(request.range.stride);
      break;
    case RequestKind::kTail:
      key += request.tag;
      key += '\x02';
      break;
    case RequestKind::kDegraded:
      key += '\x03';
      break;
  }
  return key;
}

bool coalescable(RequestKind kind) {
  // Tail polls advance a cursor and degraded queries aggregate per-tag
  // failures -- neither is an idempotent read of one immutable image, so
  // they ride the lanes without joining flights.
  return kind == RequestKind::kSubset || kind == RequestKind::kRange;
}

core::QueryCache::Image wrap(std::vector<std::uint8_t> bytes) {
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}

}  // namespace

AdaService::AdaService(core::Ada& ada, ServeConfig config)
    : ada_(ada), config_(std::move(config)), paused_(config_.start_paused) {
  if (config_.workers == 0) config_.workers = 1;
  workers_.reserve(config_.workers);
  for (unsigned i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AdaService::~AdaService() { stop(); }

AdaService::Tenant& AdaService::tenant_for(const std::string& name) {
  const auto it = tenants_.find(name);
  if (it != tenants_.end()) return *it->second;
  const auto quota_it = config_.tenant_quotas.find(name);
  const TenantQuota& quota =
      quota_it != config_.tenant_quotas.end() ? quota_it->second : config_.default_quota;
  auto tenant = std::make_unique<Tenant>(name, quota);
  Tenant& ref = *tenant;
  tenants_.emplace(name, std::move(tenant));
  tenant_order_.push_back(&ref);
  return ref;
}

void AdaService::publish_queue_depth() const {
  if (!obs::enabled()) return;
  static obs::Gauge& gauge = obs::Registry::global().gauge("serve.queue_depth");
  std::size_t depth = 0;
  for (const Tenant* tenant : tenant_order_) depth += tenant->queue.size();
  gauge.set(static_cast<double>(depth));
}

Status AdaService::submit(Request request, Callback done) {
  auto job = std::make_shared<Job>();
  job->request = std::move(request);
  job->done = std::move(done);
  job->key = request_key(job->request);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return unavailable("serve: service is stopping");
    Tenant& tenant = tenant_for(job->request.tenant);
    job->tenant = &tenant;
    // Hard memory-quota reject: a request whose learned size alone exceeds
    // the budget would never become dispatchable -- fail it now, typed.
    std::uint64_t known = 0;
    if (const auto it = tenant.last_bytes.find(job->key); it != tenant.last_bytes.end()) {
      known = it->second;
    }
    if (tenant.quota.memory_bytes != 0 && known > tenant.quota.memory_bytes) {
      ++tenant.stats.rejected_quota;
      ADA_OBS_COUNT("serve.rejected_quota", 1);
      return resource_exhausted("serve: tenant " + tenant.name + " response of " +
                                std::to_string(known) + " bytes exceeds the memory quota of " +
                                std::to_string(tenant.quota.memory_bytes) + " bytes");
    }
    // Backpressure: shed at the door instead of queueing unboundedly.
    if (tenant.quota.queue_capacity != 0 &&
        tenant.queue.size() >= tenant.quota.queue_capacity) {
      ++tenant.stats.rejected_overload;
      ADA_OBS_COUNT("serve.overloaded", 1);
      return overloaded("serve: tenant " + tenant.name + " queue is full (" +
                        std::to_string(tenant.quota.queue_capacity) + " pending)");
    }
    ++tenant.stats.accepted;
    tenant.queue.push_back(std::move(job));
    tenant.stats.queue_peak = std::max(tenant.stats.queue_peak, tenant.queue.size());
    publish_queue_depth();
  }
  ADA_OBS_COUNT("serve.requests", 1);
  work_cv_.notify_one();
  return Status::ok();
}

Result<Response> AdaService::execute(const Request& request) {
  std::promise<Result<Response>> promise;
  std::future<Result<Response>> future = promise.get_future();
  const Status accepted =
      submit(request, [&promise](Result<Response> result) { promise.set_value(std::move(result)); });
  if (!accepted.is_ok()) return accepted.error();
  return future.get();
}

void AdaService::resume() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void AdaService::stop() {
  std::vector<JobPtr> orphans;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    for (Tenant* tenant : tenant_order_) {
      for (JobPtr& job : tenant->queue) orphans.push_back(std::move(job));
      tenant->queue.clear();
    }
    publish_queue_depth();
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  for (const JobPtr& job : orphans) {
    job->done(unavailable("serve: service stopped before dispatch"));
  }
}

AdaService::JobPtr AdaService::pick_next(Tenant** picked_tenant) {
  const std::size_t n = tenant_order_.size();
  if (n == 0) return nullptr;
  while (true) {
    bool deficit_blocked = false;
    for (std::size_t i = 0; i < n; ++i) {
      Tenant* tenant = tenant_order_[(rr_pos_ + i) % n];
      if (tenant->queue.empty()) continue;
      // Gate order matters: the deficit check runs before the window probe
      // so a tenant blocked purely on its I/O share is visible below.
      if (tenant->deficit <= 0) {
        deficit_blocked = true;
        continue;
      }
      if (!tenant->window.try_acquire(0)) continue;
      JobPtr job = tenant->queue.front();
      job->expected_bytes = 0;
      if (const auto it = tenant->last_bytes.find(job->key); it != tenant->last_bytes.end()) {
        job->expected_bytes = it->second;
      }
      // Memory gate: hold the request back while the known in-flight bytes
      // plus this one would overflow the budget -- but always admit into an
      // idle lane, so an oversized learned size can't wedge the tenant
      // (submit() already hard-rejects the truly unserveable ones).
      if (tenant->quota.memory_bytes != 0 && tenant->inflight > 0 &&
          tenant->inflight_bytes + job->expected_bytes > tenant->quota.memory_bytes) {
        tenant->window.release(0);
        continue;
      }
      tenant->queue.pop_front();
      ++tenant->inflight;
      tenant->stats.inflight_peak = std::max(tenant->stats.inflight_peak, tenant->inflight);
      tenant->inflight_bytes += job->expected_bytes;
      rr_pos_ = ((rr_pos_ + i) % n + 1) % n;
      *picked_tenant = tenant;
      return job;
    }
    if (!deficit_blocked) return nullptr;
    // Every runnable tenant is out of I/O budget: start a new DRR round.
    // Deficits are charged in arrears with actual response bytes, so a
    // tenant that served a huge subset sits out rounds proportional to the
    // overshoot; capping at +quantum stops idle tenants from hoarding.
    for (Tenant* tenant : tenant_order_) {
      if (tenant->queue.empty()) continue;
      const auto quantum = static_cast<std::int64_t>(tenant->quota.io_quantum_bytes);
      tenant->deficit = std::min(tenant->deficit + quantum, quantum);
    }
    ++drr_rounds_;
    ADA_OBS_COUNT("serve.drr_rounds", 1);
  }
}

void AdaService::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (stopping_) return;
    if (!paused_) {
      Tenant* tenant = nullptr;
      JobPtr job = pick_next(&tenant);
      if (job != nullptr) {
        publish_queue_depth();
        lock.unlock();
        run_job(*tenant, job);
        lock.lock();
        continue;
      }
    }
    work_cv_.wait(lock);
  }
}

Result<Response> AdaService::backend_call(const Request& request) const {
  switch (request.kind) {
    case RequestKind::kSubset: {
      auto image = ada_.query_image(request.logical_name, request.tag);
      if (!image.is_ok()) return image.error();
      Response response;
      response.image = std::move(image).value();
      return response;
    }
    case RequestKind::kRange: {
      auto bytes = ada_.query(request.logical_name, request.tag, request.range);
      if (!bytes.is_ok()) return bytes.error();
      Response response;
      response.image = wrap(std::move(bytes).value());
      return response;
    }
    case RequestKind::kTail: {
      auto chunk = ada_.query_tail(request.logical_name, request.tag, request.from_frame);
      if (!chunk.is_ok()) return chunk.error();
      Response response;
      response.from_frame = chunk.value().from_frame;
      response.frames = chunk.value().frames;
      response.sealed = chunk.value().sealed;
      response.image = wrap(std::move(chunk).value().image);
      return response;
    }
    case RequestKind::kDegraded: {
      auto partial = ada_.query_degraded(request.logical_name);
      if (!partial.is_ok()) return partial.error();
      Response response;
      response.image = wrap(partial.value().concat());
      response.failed_tags = std::move(partial).value().failed;
      return response;
    }
  }
  return internal_error("serve: unknown request kind");
}

void AdaService::run_job(Tenant& tenant, const JobPtr& job) {
  const obs::TraceSpan span("serve_request", tenant.name);
  std::shared_ptr<Flight> flight;
  if (coalescable(job->request.kind)) {
    // The single-flight clock: observed BEFORE joining or leading, so a
    // joiner can only share a fill whose leader read under the very same
    // generation -- a racing write forces a second fill, never a stale
    // share.  The mutation clock is deliberately the coarse one (every
    // index write advances it): a streaming flush between two "identical"
    // open-ended range reads changes the correct answer, and only the
    // mutation clock sees it.
    const std::uint64_t generation =
        ada_.mount().mutation_generation(job->request.logical_name);
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = flights_.find(job->key);
    if (it != flights_.end() && it->second->generation == generation) {
      job->coalesced = true;
      it->second->joiners.push_back(job);
      ++tenant.stats.coalesced;
      ADA_OBS_COUNT("serve.coalesced", 1);
      return;  // the leader completes this job with its shared image
    }
    flight = std::make_shared<Flight>();
    flight->generation = generation;
    flights_[job->key] = flight;  // replaces a mismatched-generation flight
  }

  const Result<Response> result = backend_call(job->request);

  std::vector<std::pair<Tenant*, JobPtr>> finished;
  finished.emplace_back(&tenant, job);
  if (flight != nullptr) {
    const std::lock_guard<std::mutex> lock(mu_);
    for (JobPtr& joiner : flight->joiners) {
      finished.emplace_back(joiner->tenant, std::move(joiner));
    }
    flight->joiners.clear();
    // Erase only our own entry: a mismatched-generation successor may
    // already have replaced it, and its leader owns that one.
    const auto it = flights_.find(job->key);
    if (it != flights_.end() && it->second == flight) flights_.erase(it);
  }
  ADA_OBS_COUNT("serve.fills", 1);
  finish_jobs(finished, result);
}

void AdaService::finish_jobs(const std::vector<std::pair<Tenant*, JobPtr>>& jobs,
                             const Result<Response>& result) {
  const std::uint64_t actual = result.is_ok() ? result.value().image->size() : 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++fills_;  // one backend call retired (however many jobs it served)
    for (const auto& [tenant, job] : jobs) {
      // Arrears accounting: the deficit is charged what the response
      // actually weighed, which the scheduler could not know up front.
      tenant->deficit -= static_cast<std::int64_t>(actual);
      --tenant->inflight;
      tenant->inflight_bytes -= job->expected_bytes;
      tenant->window.release(0);
      if (result.is_ok()) {
        tenant->last_bytes[job->key] = actual;
        ++tenant->stats.completed;
        tenant->stats.bytes_served += actual;
      } else {
        ++tenant->stats.failed;
      }
    }
  }
  work_cv_.notify_all();  // slots and deficits moved: every worker re-scans
  for (const auto& [tenant, job] : jobs) {
    if (result.is_ok()) {
      ADA_OBS_COUNT("serve.completed", 1);
      ADA_OBS_COUNT("serve.bytes_out", actual);
      Response response = result.value();
      response.coalesced = job->coalesced;
      job->done(std::move(response));
    } else {
      ADA_OBS_COUNT("serve.failed", 1);
      job->done(result.error());
    }
  }
}

ServeStats AdaService::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  ServeStats stats;
  stats.fills = fills_;
  stats.drr_rounds = drr_rounds_;
  for (const Tenant* tenant : tenant_order_) {
    stats.tenants.emplace(tenant->name, tenant->stats);
    stats.accepted += tenant->stats.accepted;
    stats.completed += tenant->stats.completed;
    stats.failed += tenant->stats.failed;
    stats.rejected_overload += tenant->stats.rejected_overload;
    stats.rejected_quota += tenant->stats.rejected_quota;
    stats.coalesced += tenant->stats.coalesced;
    stats.bytes_served += tenant->stats.bytes_served;
  }
  return stats;
}

}  // namespace ada::serve
