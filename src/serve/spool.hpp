// Spool IPC: the file-based request/response protocol between ada-serve and
// its clients.
//
// The repo has no network stack (and needs none for a single-node
// deployment): clients and the service share a spool directory, and every
// exchange is plain atomic-rename filesystem traffic --
//
//   client:  <id>.req   one key=value line per field, written via tmp+rename
//   server:  <id>.wip   the claim (rename of .req: exactly one server wins)
//            <id>.raw   the RAW payload bytes
//            <id>.done  verdict line, written LAST via tmp+rename:
//                         ok <coalesced> <from_frame> <frames> <sealed>
//                         error <code_name> <message...>
//
// A client polls for `<id>.done`; because it appears only after `<id>.raw`
// is fully renamed in, a client that sees the verdict can read the payload
// without locking.  Typed errors travel as the ErrorCode name, so a client
// distinguishes an overloaded server (back off) from a missing dataset
// (give up) without parsing prose.  Protocol details in docs/serving.md.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "serve/serve.hpp"

namespace ada::serve {

/// What a spool exchange returns to the client.
struct SpoolReply {
  std::vector<std::uint8_t> payload;
  bool coalesced = false;
  std::uint64_t from_frame = 0;
  std::uint64_t frames = 0;
  bool sealed = false;
};

/// One key=value-per-line request file body.
std::string encode_spool_request(const Request& request);
Result<Request> parse_spool_request(const std::string& text);

/// Client half: drop requests into the spool, wait for verdicts.
class SpoolClient {
 public:
  explicit SpoolClient(std::string dir);

  /// Write the request, poll for the verdict, read the payload.  Errors the
  /// server reported come back typed (kOverloaded, kNotFound, ...);
  /// kDeadlineExceeded means no verdict within `timeout_s`.
  Result<SpoolReply> call(const Request& request, double timeout_s, double poll_s = 0.02);

 private:
  std::string dir_;
};

/// Server half: claim request files, run them through the service, publish
/// verdicts.  Single-threaded scanning; execution itself rides the
/// service's worker pool (poll_once only blocks on submit-side rejection).
class SpoolServer {
 public:
  SpoolServer(AdaService& service, std::string dir);

  /// Scan the spool once, submit every unclaimed request.  Returns how many
  /// were claimed; completions land asynchronously from worker threads.
  std::size_t poll_once();

 private:
  AdaService& service_;
  /// Shared with every in-flight completion callback: a worker thread may
  /// publish a verdict after this SpoolServer is destroyed (the client only
  /// waits for `.done`, not for the server's cleanup), so the callbacks
  /// must not reach back into the server object at all.
  std::shared_ptr<const std::string> dir_;
};

}  // namespace ada::serve
