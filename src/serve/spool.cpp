#include "serve/spool.hpp"

#include <unistd.h>

#include <atomic>
#include <charconv>
#include <chrono>
#include <filesystem>
#include <span>
#include <thread>

#include "common/binary_io.hpp"

namespace ada::serve {

namespace fs = std::filesystem;

namespace {

const char* kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::kSubset: return "subset";
    case RequestKind::kRange: return "range";
    case RequestKind::kTail: return "tail";
    case RequestKind::kDegraded: return "degraded";
  }
  return "subset";
}

Result<RequestKind> kind_from_name(const std::string& name) {
  if (name == "subset") return RequestKind::kSubset;
  if (name == "range") return RequestKind::kRange;
  if (name == "tail") return RequestKind::kTail;
  if (name == "degraded") return RequestKind::kDegraded;
  return invalid_argument("spool: unknown request kind '" + name + "'");
}

/// The typed half of the wire verdict: "error overloaded ..." must come back
/// as kOverloaded, not a stringly-typed kInternal.
ErrorCode code_from_name(const std::string& name) {
  constexpr ErrorCode kCodes[] = {
      ErrorCode::kInvalidArgument, ErrorCode::kNotFound,       ErrorCode::kAlreadyExists,
      ErrorCode::kOutOfRange,      ErrorCode::kCorruptData,    ErrorCode::kIoError,
      ErrorCode::kUnsupported,     ErrorCode::kResourceExhausted,
      ErrorCode::kFailedPrecondition, ErrorCode::kUnavailable, ErrorCode::kDeadlineExceeded,
      ErrorCode::kOverloaded,      ErrorCode::kInternal,
  };
  for (const ErrorCode code : kCodes) {
    if (name == to_string(code)) return code;
  }
  return ErrorCode::kInternal;
}

Result<std::uint64_t> parse_u64(const std::string& text, const char* field) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return invalid_argument(std::string("spool: bad ") + field + " value '" + text + "'");
  }
  return value;
}

Status write_text_atomic(const std::string& path, const std::string& text) {
  return write_file_atomic(
      path, std::span(reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

std::string next_request_id() {
  static std::atomic<std::uint64_t> sequence{0};
  std::string id = "q";
  id += std::to_string(static_cast<std::uint64_t>(::getpid()));
  id += '-';
  id += std::to_string(sequence.fetch_add(1, std::memory_order_relaxed));
  return id;
}

}  // namespace

std::string encode_spool_request(const Request& request) {
  std::string text;
  text += "tenant=" + request.tenant + "\n";
  text += "name=" + request.logical_name + "\n";
  text += "tag=" + request.tag + "\n";
  text += std::string("kind=") + kind_name(request.kind) + "\n";
  text += "begin=" + std::to_string(request.range.begin) + "\n";
  text += "end=" + std::to_string(request.range.end) + "\n";
  text += "stride=" + std::to_string(request.range.stride) + "\n";
  text += "from=" + std::to_string(request.from_frame) + "\n";
  return text;
}

Result<Request> parse_spool_request(const std::string& text) {
  Request request;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return corrupt_data("spool: request line without '=': " + line);
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "tenant") {
      request.tenant = value;
    } else if (key == "name") {
      request.logical_name = value;
    } else if (key == "tag") {
      request.tag = value;
    } else if (key == "kind") {
      ADA_ASSIGN_OR_RETURN(request.kind, kind_from_name(value));
    } else if (key == "begin") {
      ADA_ASSIGN_OR_RETURN(const auto v, parse_u64(value, "begin"));
      request.range.begin = static_cast<std::uint32_t>(v);
    } else if (key == "end") {
      ADA_ASSIGN_OR_RETURN(const auto v, parse_u64(value, "end"));
      request.range.end = static_cast<std::uint32_t>(v);
    } else if (key == "stride") {
      ADA_ASSIGN_OR_RETURN(const auto v, parse_u64(value, "stride"));
      request.range.stride = static_cast<std::uint32_t>(v);
    } else if (key == "from") {
      ADA_ASSIGN_OR_RETURN(request.from_frame, parse_u64(value, "from"));
    } else {
      return corrupt_data("spool: unknown request field '" + key + "'");
    }
  }
  if (request.logical_name.empty()) return invalid_argument("spool: request without name=");
  return request;
}

SpoolClient::SpoolClient(std::string dir) : dir_(std::move(dir)) {}

Result<SpoolReply> SpoolClient::call(const Request& request, double timeout_s, double poll_s) {
  if (poll_s <= 0) poll_s = 0.02;
  const std::string id = next_request_id();
  const std::string base = dir_ + "/" + id;
  ADA_RETURN_IF_ERROR(write_text_atomic(base + ".req", encode_spool_request(request)));

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s > 0 ? timeout_s : 0);
  while (!fs::exists(base + ".done")) {
    if (timeout_s > 0 && std::chrono::steady_clock::now() >= deadline) {
      std::error_code ec;
      fs::remove(base + ".req", ec);  // withdraw if still unclaimed
      return deadline_exceeded("spool: no verdict for " + id + " within " +
                               std::to_string(timeout_s) + "s");
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(poll_s));
  }

  ADA_ASSIGN_OR_RETURN(const auto done_bytes, read_file(base + ".done"));
  std::string verdict(done_bytes.begin(), done_bytes.end());
  if (!verdict.empty() && verdict.back() == '\n') verdict.pop_back();

  SpoolReply reply;
  std::error_code ec;
  if (verdict.rfind("ok ", 0) == 0) {
    std::uint64_t coalesced = 0;
    std::uint64_t sealed = 0;
    const std::string fields = verdict.substr(3);
    // "ok <coalesced> <from_frame> <frames> <sealed>"
    std::size_t start = 0;
    std::uint64_t* const slots[] = {&coalesced, &reply.from_frame, &reply.frames, &sealed};
    for (std::uint64_t* slot : slots) {
      std::size_t space = fields.find(' ', start);
      if (space == std::string::npos) space = fields.size();
      ADA_ASSIGN_OR_RETURN(*slot, parse_u64(fields.substr(start, space - start), "verdict"));
      start = space + 1;
    }
    reply.coalesced = coalesced != 0;
    reply.sealed = sealed != 0;
    ADA_ASSIGN_OR_RETURN(reply.payload, read_file(base + ".raw"));
    fs::remove(base + ".raw", ec);
    fs::remove(base + ".done", ec);
    return reply;
  }
  fs::remove(base + ".raw", ec);
  fs::remove(base + ".done", ec);
  if (verdict.rfind("error ", 0) == 0) {
    const std::string rest = verdict.substr(6);
    const std::size_t space = rest.find(' ');
    const std::string code = space == std::string::npos ? rest : rest.substr(0, space);
    const std::string message =
        space == std::string::npos ? std::string("(no message)") : rest.substr(space + 1);
    return Error(code_from_name(code), message);
  }
  return corrupt_data("spool: malformed verdict '" + verdict + "' for " + id);
}

SpoolServer::SpoolServer(AdaService& service, std::string dir)
    : service_(service), dir_(std::make_shared<const std::string>(std::move(dir))) {}

namespace {

/// Write one exchange's verdict (and payload on success).  A free function
/// over (dir, id) on purpose: completion callbacks run on service worker
/// threads and may fire after the SpoolServer that submitted them is gone.
void publish_verdict(const std::string& dir, const std::string& id,
                     const Result<Response>& result) {
  const std::string base = dir + "/" + id;
  if (result.is_ok()) {
    const Response& response = result.value();
    // Payload first, verdict last: a client that sees .done can trust .raw.
    if (const Status wrote = write_file_atomic(base + ".raw", *response.image); !wrote.is_ok()) {
      (void)write_text_atomic(base + ".done", "error io_error " + wrote.error().message() + "\n");
    } else {
      (void)write_text_atomic(
          base + ".done",
          "ok " + std::to_string(response.coalesced ? 1 : 0) + " " +
              std::to_string(response.from_frame) + " " + std::to_string(response.frames) + " " +
              std::to_string(response.sealed ? 1 : 0) + "\n");
    }
  } else {
    (void)write_text_atomic(base + ".done", "error " + std::string(to_string(result.error().code())) +
                                                " " + result.error().message() + "\n");
  }
  std::error_code ec;
  fs::remove(base + ".wip", ec);
}

}  // namespace

std::size_t SpoolServer::poll_once() {
  std::size_t claimed = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(*dir_, ec)) {
    if (ec) break;
    const fs::path& path = entry.path();
    if (path.extension() != ".req") continue;
    const std::string id = path.stem().string();
    const fs::path wip = path.parent_path() / (id + ".wip");
    // The claim: exactly one scanner wins the rename; losers skip.
    std::error_code claim_ec;
    fs::rename(path, wip, claim_ec);
    if (claim_ec) continue;
    ++claimed;
    const auto body = read_file(wip.string());
    if (!body.is_ok()) {
      publish_verdict(*dir_, id, body.error());
      continue;
    }
    const auto request = parse_spool_request(std::string(body.value().begin(), body.value().end()));
    if (!request.is_ok()) {
      publish_verdict(*dir_, id, request.error());
      continue;
    }
    const Status accepted = service_.submit(
        request.value(),
        [dir = dir_, id](Result<Response> result) { publish_verdict(*dir, id, result); });
    // Submit-side rejections (kOverloaded, quota) never reach a worker:
    // publish the typed verdict right here so the client backs off.
    if (!accepted.is_ok()) publish_verdict(*dir_, id, accepted.error());
  }
  return claimed;
}

}  // namespace ada::serve
