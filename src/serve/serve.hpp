// AdaService: the multi-tenant serving layer over one shared Ada middleware.
//
// Everything below Ada models one user on a private mount; the paper's
// deployment target is the opposite -- one acquirer in front of many VMD
// sessions replaying the same trajectories (ROADMAP open item 1).  This
// layer adds the three things a shared deployment needs and nothing else:
//
//   * Request coalescing.  N concurrent readers of the same (logical_name,
//     tag) -- or the same range selection -- join one in-flight backend
//     fill and share the refcounted cache image, single-flight keyed on the
//     container's mutation generation observed at join time.  A write
//     racing the fill changes the generation, so a late joiner starts a
//     second fill instead of sharing bytes that may predate the write:
//     duplicate work is possible under races, a stale share is not.
//
//   * Per-tenant admission control.  Each tenant gets its own
//     AdmissionWindow lane (bounded in-flight), an optional in-memory
//     response-byte budget, and an I/O byte quantum consumed by a
//     deficit-round-robin scheduler (charged in arrears with the actual
//     response size), so one hot tenant replaying a big subset cannot
//     starve a cold tenant's first frame.
//
//   * Backpressure.  Per-tenant queues are bounded; a full queue rejects
//     the request immediately with a typed kOverloaded error instead of
//     queueing unboundedly.  Degraded and tail queries flow through the
//     same lanes -- there is no side door around admission.
//
// Threading: submit() never blocks on backend I/O (it enqueues or rejects);
// a fixed worker pool drains the queues.  Callbacks run on worker threads
// and must not block on another submit() of the same service at saturation.
//
// Overload semantics and the tenancy model are documented in
// docs/serving.md; serve.* counters in docs/observability.md.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ada/middleware.hpp"
#include "common/admission.hpp"
#include "common/result.hpp"

namespace ada::serve {

/// Per-tenant resource limits.  Zero means "unbounded" for every field
/// except io_quantum_bytes (the DRR share; zero falls back to the default).
struct TenantQuota {
  /// Concurrent requests in service for this tenant (its admission window).
  unsigned max_inflight = 4;
  /// Queued-but-not-started requests before submit() sheds with kOverloaded.
  std::size_t queue_capacity = 64;
  /// Response bytes allowed in flight at once; a request whose (learned)
  /// size alone exceeds this is rejected with kResourceExhausted.  One
  /// request is always allowed through, so a tenant can never wedge itself.
  std::uint64_t memory_bytes = 0;
  /// Deficit-round-robin share: bytes of backend I/O this tenant may
  /// consume per scheduling round relative to other backlogged tenants.
  std::uint64_t io_quantum_bytes = 4ull << 20;
};

struct ServeConfig {
  /// Worker threads draining the request queues.
  unsigned workers = 4;
  /// Start with dispatch paused (tests pre-load queues, then resume()).
  bool start_paused = false;
  /// Quota for tenants not listed in `tenant_quotas`.
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> tenant_quotas;
};

enum class RequestKind { kSubset, kRange, kTail, kDegraded };

struct Request {
  std::string tenant = "default";
  std::string logical_name;
  core::Tag tag;                                 // unused for kDegraded
  RequestKind kind = RequestKind::kSubset;
  core::FrameRange range;                        // kRange only
  std::uint64_t from_frame = 0;                  // kTail only
};

struct Response {
  /// The payload: a refcounted RAW image shared with the cache and with
  /// every coalesced reader (kDegraded: the surviving subsets concatenated
  /// in tag order).  Never null on success; may hold zero bytes (an empty
  /// tail poll).
  core::QueryCache::Image image;
  /// This response shared another request's backend fill.
  bool coalesced = false;
  std::uint64_t from_frame = 0;                  // kTail
  std::uint64_t frames = 0;                      // kTail
  bool sealed = false;                           // kTail
  std::vector<core::Ada::TagFailure> failed_tags;  // kDegraded survivors' complement
};

struct TenantStats {
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t bytes_served = 0;
  std::size_t queue_peak = 0;
  unsigned inflight_peak = 0;
};

struct ServeStats {
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t coalesced = 0;
  /// Backend fills actually executed (coalesced joiners excluded).
  std::uint64_t fills = 0;
  /// Deficit-recredit rounds the scheduler ran (fairness was exercised).
  std::uint64_t drr_rounds = 0;
  std::uint64_t bytes_served = 0;
  std::map<std::string, TenantStats> tenants;
};

class AdaService {
 public:
  using Callback = std::function<void(Result<Response>)>;

  /// The service serves queries through `ada`, which must outlive it.
  /// Arm AdaConfig::cache_bytes on `ada`: coalescing works without the
  /// cache, but only a cached fill is shareable with later requests.
  AdaService(core::Ada& ada, ServeConfig config);
  ~AdaService();

  AdaService(const AdaService&) = delete;
  AdaService& operator=(const AdaService&) = delete;

  /// Enqueue a request.  Returns immediately: ok() means `done` will be
  /// invoked exactly once from a worker thread; an error means it never
  /// will (kOverloaded: tenant queue full; kResourceExhausted: the request
  /// cannot fit the tenant's memory quota; kUnavailable: stopping).
  Status submit(Request request, Callback done);

  /// submit() + wait: the blocking convenience for tools and tests.
  Result<Response> execute(const Request& request);

  /// Release a start_paused service's dispatcher.
  void resume();

  /// Stop accepting work, fail queued requests with kUnavailable, finish
  /// in-flight ones, join the workers.  Idempotent; the destructor calls it.
  void stop();

  ServeStats stats() const;

 private:
  struct Tenant;

  struct Job {
    Request request;
    Callback done;
    Tenant* tenant = nullptr;
    std::string key;                 // request identity: coalescing + size learning
    std::uint64_t expected_bytes = 0;  // charged against the memory quota while in flight
    bool coalesced = false;
  };
  using JobPtr = std::shared_ptr<Job>;

  /// One in-flight backend fill that identical requests join.
  struct Flight {
    std::uint64_t generation = 0;
    std::vector<JobPtr> joiners;
  };

  struct Tenant {
    Tenant(std::string tenant_name, const TenantQuota& q)
        : name(std::move(tenant_name)), quota(q), window(1, q.max_inflight) {
      if (quota.io_quantum_bytes == 0) quota.io_quantum_bytes = TenantQuota{}.io_quantum_bytes;
      deficit = static_cast<std::int64_t>(quota.io_quantum_bytes);
    }
    std::string name;
    TenantQuota quota;
    AdmissionWindow window;  // single-key lane: this tenant's in-flight bound
    std::deque<JobPtr> queue;
    unsigned inflight = 0;
    std::uint64_t inflight_bytes = 0;
    std::int64_t deficit = 0;
    /// Last observed response size per request key: the admission
    /// controller's size oracle (0 / absent = unknown, admitted on faith).
    std::map<std::string, std::uint64_t> last_bytes;
    TenantStats stats;
  };

  Tenant& tenant_for(const std::string& name);  // caller holds mu_
  JobPtr pick_next(Tenant** picked_tenant);     // caller holds mu_
  void publish_queue_depth() const;             // caller holds mu_
  void worker_loop();
  void run_job(Tenant& tenant, const JobPtr& job);
  Result<Response> backend_call(const Request& request) const;
  void finish_jobs(const std::vector<std::pair<Tenant*, JobPtr>>& jobs,
                   const Result<Response>& result);

  core::Ada& ada_;
  ServeConfig config_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  bool paused_ = false;
  bool stopping_ = false;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  std::vector<Tenant*> tenant_order_;  // DRR rotation order (insertion order)
  std::size_t rr_pos_ = 0;
  std::map<std::string, std::shared_ptr<Flight>> flights_;

  std::uint64_t fills_ = 0;
  std::uint64_t drr_rounds_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace ada::serve
