// XDR (RFC 1832) encoding -- the wire substrate of the XTC trajectory format.
//
// GROMACS .xtc files are XDR streams: every primitive is big-endian and every
// item is padded to a 4-byte boundary.  This module implements the subset XTC
// needs (int, unsigned int, float, double, counted opaque data) plus strings
// for completeness, over in-memory buffers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace ada::xdr {

/// Serializes XDR items into an owned byte buffer.
class XdrWriter {
 public:
  void put_i32(std::int32_t v);
  void put_u32(std::uint32_t v);
  void put_f32(float v);
  void put_f64(double v);

  /// Counted opaque: u32 length, raw bytes, zero padding to 4-byte boundary.
  void put_opaque(std::span<const std::uint8_t> bytes);

  /// Fixed opaque: raw bytes + padding, no length prefix (length is implicit).
  void put_fixed_opaque(std::span<const std::uint8_t> bytes);

  /// XDR string: counted opaque over the character bytes.
  void put_string(const std::string& s);

  std::size_t size() const noexcept { return buffer_.size(); }
  const std::vector<std::uint8_t>& bytes() const noexcept { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }

 private:
  void pad_to_alignment();

  std::vector<std::uint8_t> buffer_;
};

/// Deserializes XDR items from a non-owned byte span.
class XdrReader {
 public:
  explicit XdrReader(std::span<const std::uint8_t> data) : data_(data) {}

  Result<std::int32_t> get_i32();
  Result<std::uint32_t> get_u32();
  Result<float> get_f32();
  Result<double> get_f64();
  Result<std::vector<std::uint8_t>> get_opaque();
  Result<std::vector<std::uint8_t>> get_fixed_opaque(std::size_t n);
  Result<std::string> get_string();

  std::size_t position() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool at_end() const noexcept { return pos_ == data_.size(); }

 private:
  Status require(std::size_t n);
  Status skip_padding(std::size_t payload);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Bytes of padding needed to align `payload` to the XDR 4-byte boundary.
constexpr std::size_t padding_for(std::size_t payload) noexcept {
  return (4 - payload % 4) % 4;
}

}  // namespace ada::xdr
