#include "xdr/xdr.hpp"

#include <cstring>

#include "common/binary_io.hpp"

namespace ada::xdr {

// --- XdrWriter -----------------------------------------------------------------

void XdrWriter::pad_to_alignment() {
  const std::size_t pad = padding_for(buffer_.size());
  buffer_.insert(buffer_.end(), pad, std::uint8_t{0});
}

void XdrWriter::put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }

void XdrWriter::put_u32(std::uint32_t v) {
  const std::uint32_t wire = to_big_endian32(v);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&wire);
  buffer_.insert(buffer_.end(), p, p + 4);
}

void XdrWriter::put_f32(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, 4);
  put_u32(bits);
}

void XdrWriter::put_f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, 8);
  // XDR double: the high 32 bits first (big-endian overall).
  put_u32(static_cast<std::uint32_t>(bits >> 32));
  put_u32(static_cast<std::uint32_t>(bits & 0xffffffffu));
}

void XdrWriter::put_opaque(std::span<const std::uint8_t> bytes) {
  put_u32(static_cast<std::uint32_t>(bytes.size()));
  put_fixed_opaque(bytes);
}

void XdrWriter::put_fixed_opaque(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  pad_to_alignment();
}

void XdrWriter::put_string(const std::string& s) {
  put_opaque(std::span(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

// --- XdrReader -----------------------------------------------------------------

Status XdrReader::require(std::size_t n) {
  if (remaining() < n) {
    return corrupt_data("xdr stream truncated: need " + std::to_string(n) + " bytes at offset " +
                        std::to_string(pos_) + ", have " + std::to_string(remaining()));
  }
  return Status::ok();
}

Status XdrReader::skip_padding(std::size_t payload) {
  const std::size_t pad = padding_for(payload);
  ADA_RETURN_IF_ERROR(require(pad));
  for (std::size_t i = 0; i < pad; ++i) {
    if (data_[pos_ + i] != 0) return corrupt_data("nonzero xdr padding byte");
  }
  pos_ += pad;
  return Status::ok();
}

Result<std::int32_t> XdrReader::get_i32() {
  ADA_ASSIGN_OR_RETURN(const std::uint32_t u, get_u32());
  return static_cast<std::int32_t>(u);
}

Result<std::uint32_t> XdrReader::get_u32() {
  ADA_RETURN_IF_ERROR(require(4));
  std::uint32_t wire = 0;
  std::memcpy(&wire, data_.data() + pos_, 4);
  pos_ += 4;
  return from_big_endian32(wire);
}

Result<float> XdrReader::get_f32() {
  ADA_ASSIGN_OR_RETURN(const std::uint32_t bits, get_u32());
  float v = 0;
  std::memcpy(&v, &bits, 4);
  return v;
}

Result<double> XdrReader::get_f64() {
  ADA_ASSIGN_OR_RETURN(const std::uint32_t hi, get_u32());
  ADA_ASSIGN_OR_RETURN(const std::uint32_t lo, get_u32());
  const std::uint64_t bits = (static_cast<std::uint64_t>(hi) << 32) | lo;
  double v = 0;
  std::memcpy(&v, &bits, 8);
  return v;
}

Result<std::vector<std::uint8_t>> XdrReader::get_opaque() {
  ADA_ASSIGN_OR_RETURN(const std::uint32_t n, get_u32());
  return get_fixed_opaque(n);
}

Result<std::vector<std::uint8_t>> XdrReader::get_fixed_opaque(std::size_t n) {
  ADA_RETURN_IF_ERROR(require(n));
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  ADA_RETURN_IF_ERROR(skip_padding(n));
  return out;
}

Result<std::string> XdrReader::get_string() {
  ADA_ASSIGN_OR_RETURN(const auto bytes, get_opaque());
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace ada::xdr
