// Quickstart: the whole ADA workflow in ~80 lines.
//
//   1. build a small solvated membrane-protein system and a trajectory;
//   2. stand up an ADA middleware over two backend "file systems";
//   3. ingest the (.pdb, .xtc) pair -- ADA decompresses, categorizes with
//      Algorithm 1, and dispatches protein -> SSD backend, MISC -> HDD;
//   4. load only the protein subset the way the paper's modified VMD does:
//      $ mol addfile /mnt/bar.xtc tag p
//   5. render a frame to a .ppm image.
//
// Run:  ./build/examples/quickstart [output_dir]
#include <filesystem>
#include <iostream>

#include "ada/middleware.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "formats/pdb.hpp"
#include "formats/xtc_file.hpp"
#include "vmd/command.hpp"
#include "vmd/mol.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

using namespace ada;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kInfo);
  const std::string root = argc > 1 ? argv[1] : "quickstart_out";
  std::filesystem::create_directories(root);

  // 1. A small GPCR-like system (2,176 atoms) and a 10-frame trajectory.
  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  workload::TrajectoryGenerator dynamics(system, workload::DynamicsSpec{});
  formats::XtcWriter xtc;
  for (int f = 0; f < 10; ++f) {
    ADA_CHECK(xtc.add_frame(dynamics.current_step(), dynamics.current_time_ps(), system.box(),
                            dynamics.next_frame())
                  .is_ok());
  }
  std::cout << "system: " << system.atom_count() << " atoms ("
            << system.count_category(chem::Category::kProtein) << " protein), trajectory: "
            << xtc.frame_count() << " frames, "
            << format_bytes(static_cast<double>(xtc.size_bytes()))
            << " compressed\n";

  // 2. ADA over an SSD-backed and an HDD-backed file system (host dirs here).
  core::AdaConfig config;
  config.placement = core::PlacementPolicy::active_on_ssd(/*ssd=*/0, /*hdd=*/1);
  // Re-running the example re-ingests bar.xtc; without this, the second run
  // would fail with already_exists (replacing a live dataset is opt-in).
  config.overwrite = true;
  core::Ada middleware(
      plfs::PlfsMount::open({{"ssd-fs", root + "/mnt_ssd"}, {"hdd-fs", root + "/mnt_hdd"}})
          .value(),
      config);

  // 3. Ingest: this is where the storage node does the pre-processing once.
  const auto report = middleware.ingest(system, xtc.bytes(), "bar.xtc").value();
  std::cout << "ingested bar.xtc: " << report.preprocess.frames << " frames decompressed in "
            << format_seconds(report.preprocess.decompress_wall_seconds) << "\n";
  for (const auto& [tag, bytes] : report.preprocess.subset_bytes) {
    std::cout << "  subset '" << tag << "': " << format_bytes(static_cast<double>(bytes))
              << " -> backend " << report.backend_of_tag.at(tag) << "\n";
  }

  // 4. Mini-VMD, exactly the paper's command lines.
  const std::string pdb_path = root + "/foo.pdb";
  ADA_CHECK(formats::write_pdb_file(pdb_path, system).is_ok());
  vmd::MolSession session(&middleware);
  vmd::CommandInterpreter interpreter(session);
  for (const std::string& command :
       {"mol new " + pdb_path, std::string("mol addfile /mnt/bar.xtc tag p"),
        std::string("animate goto 5"), "render snapshot " + root + "/protein.ppm"}) {
    const auto out = interpreter.execute(command);
    ADA_CHECK(out.is_ok());
    std::cout << "$ " << command << "\n  " << out.value() << "\n";
  }

  std::cout << "\nonly " << format_bytes(session.frames().bytes())
            << " reached the \"compute node\" -- the MISC subset stayed on the HDD backend.\n"
            << "image written to " << root << "/protein.ppm\n";
  return 0;
}
