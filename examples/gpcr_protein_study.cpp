// GPCR protein study: the paper's motivating workload, end to end, with a
// side-by-side comparison of the traditional and the ADA-assisted workflow.
//
// A biologist studies the receptor's behaviour across a trajectory.  The
// traditional path decompresses the whole .xtc and filters out liquid and
// ligand data every session; the ADA path queries the protein subset that
// the storage node prepared once at ingest.  This example really executes
// both paths on the same data and reports measured CPU phases (the
// functional counterpart of Fig. 8), memory footprints, and the three
// Fig. 1-style images (full system / protein / MISC).
//
// Run:  ./build/examples/gpcr_protein_study [output_dir]
#include <filesystem>
#include <iostream>

#include "ada/middleware.hpp"
#include "common/binary_io.hpp"
#include "common/strings.hpp"
#include "common/units.hpp"
#include "formats/pdb.hpp"
#include "formats/raw_traj.hpp"
#include "formats/xtc_file.hpp"
#include "vmd/analysis.hpp"
#include "vmd/mol.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

using namespace ada;

namespace {

void print_profile(const char* title, const vmd::MolSession& session,
                   const storage::MemoryTracker& memory) {
  std::cout << "\n" << title << "\n";
  for (const auto& line : session.profiler().folded()) std::cout << "    " << line << "\n";
  std::cout << "    decompression share: "
            << format_fixed(100.0 * session.profiler().fraction_under("vmd;load;decompress"), 1)
            << "%  |  frames in memory: " << format_bytes(session.frames().bytes())
            << "  |  tracker peak: " << format_bytes(memory.peak()) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : "gpcr_study_out";
  std::filesystem::create_directories(root);

  // The GPCR membrane system with a bound ligand, 60 trajectory frames.
  workload::GpcrSpec spec = workload::GpcrSpec::tiny();
  spec.ligand_atoms = 24;
  const auto system = workload::GpcrSystemBuilder(spec).build();
  workload::TrajectoryGenerator dynamics(system, workload::DynamicsSpec{});
  formats::XtcWriter writer;
  for (int f = 0; f < 60; ++f) {
    ADA_CHECK(writer.add_frame(dynamics.current_step(), dynamics.current_time_ps(), system.box(),
                               dynamics.next_frame())
                  .is_ok());
  }
  const auto xtc = writer.take();
  const std::string pdb_path = root + "/gpcr.pdb";
  ADA_CHECK(formats::write_pdb_file(pdb_path, system).is_ok());
  ADA_CHECK(write_file(root + "/traj.xtc", xtc).is_ok());
  std::cout << "GPCR system: " << system.atom_count() << " atoms, protein "
            << system.count_category(chem::Category::kProtein) << ", ligand "
            << system.count_category(chem::Category::kLigand) << ", trajectory "
            << format_bytes(static_cast<double>(xtc.size())) << " compressed ("
            << format_bytes(static_cast<double>(formats::raw_file_bytes(system.atom_count(), 60)))
            << " raw)\n";

  // Storage side: ingest through ADA once.
  core::AdaConfig config;
  config.placement = core::PlacementPolicy::active_on_ssd(0, 1);
  core::Ada middleware(
      plfs::PlfsMount::open({{"ssd-fs", root + "/mnt_ssd"}, {"hdd-fs", root + "/mnt_hdd"}})
          .value(),
      config);
  ADA_CHECK(middleware.ingest(system, xtc, "traj.xtc").is_ok());

  // --- traditional workflow: decompress + filter on the compute node ----------
  storage::MemoryTracker traditional_memory(4 * kGB);
  vmd::MolSession traditional(nullptr, &traditional_memory);
  ADA_CHECK(traditional.mol_new_file(pdb_path).is_ok());
  ADA_CHECK(traditional.mol_addfile(root + "/traj.xtc").is_ok());
  ADA_CHECK(traditional.render(0).is_ok());
  print_profile("traditional workflow (decompress every session):", traditional,
                traditional_memory);

  // --- ADA-assisted workflow: protein subset only ------------------------------
  storage::MemoryTracker ada_memory(4 * kGB);
  vmd::MolSession assisted(&middleware, &ada_memory);
  ADA_CHECK(assisted.mol_new_file(pdb_path).is_ok());
  ADA_CHECK(assisted.mol_addfile("/mnt/traj.xtc", core::Tag("p")).is_ok());
  ADA_CHECK(assisted.render(0).is_ok());
  print_profile("ADA-assisted workflow (mol addfile ... tag p):", assisted, ada_memory);

  std::cout << "\nmemory saved by ADA: "
            << format_fixed(traditional_memory.peak() / ada_memory.peak(), 2)
            << "x (paper Fig. 7c: >2.5x at scale)\n";

  // --- Fig. 1-style images -------------------------------------------------------
  vmd::RenderOptions options;
  options.width = 320;
  options.height = 320;
  {
    // (a) original raw data: everything.
    auto frame = traditional.render(0, options).value();
    ADA_CHECK(vmd::write_ppm(root + "/fig1a_full_system.ppm", frame.image).is_ok());
  }
  {
    // (b) protein dataset.
    auto frame = assisted.render(0, options).value();
    ADA_CHECK(vmd::write_ppm(root + "/fig1b_protein.ppm", frame.image).is_ok());
  }
  {
    // (c) MISC dataset: the liquid/lipid that surrounds the protein.
    vmd::MolSession misc(&middleware);
    ADA_CHECK(misc.mol_new_file(pdb_path).is_ok());
    ADA_CHECK(misc.mol_addfile("/mnt/traj.xtc", core::Tag("m")).is_ok());
    auto frame = misc.render(0, options).value();
    ADA_CHECK(vmd::write_ppm(root + "/fig1c_misc.ppm", frame.image).is_ok());
  }
  std::cout << "wrote Fig. 1-style images: fig1a_full_system.ppm, fig1b_protein.ppm,\n"
            << "fig1c_misc.ppm under " << root << "/\n";

  // --- the actual science: structural analysis on the protein subset -----------
  // This is the "sophisticated operations" work the paper wants compute nodes
  // to spend their cycles on -- run here entirely from ADA's protein subset.
  {
    const auto& frames = assisted.frames();
    std::vector<std::vector<float>> coords;
    for (std::size_t f = 0; f < frames.frame_count(); ++f) {
      coords.push_back(frames.frame(f).coords);
    }
    const double rg_first = vmd::radius_of_gyration(coords.front());
    const double rg_last = vmd::radius_of_gyration(coords.back());
    const double drift = vmd::rmsd_aligned(coords.front(), coords.back()).value();
    const auto msd = vmd::mean_squared_displacement(coords).value();
    std::cout << "\nprotein analysis over " << coords.size() << " frames (ADA subset only):\n"
              << "  radius of gyration: " << format_fixed(rg_first, 3) << " -> "
              << format_fixed(rg_last, 3) << " nm\n"
              << "  aligned RMSD first->last frame: " << format_fixed(drift, 4) << " nm\n"
              << "  MSD at last frame: " << format_fixed(msd.back(), 5) << " nm^2\n";
  }
  return 0;
}
