// Membrane analysis: fine-grained tags + the selection language + the
// analysis toolkit, working together on ADA subsets.
//
// A membrane biophysicist wants lipid-order and hydration answers without
// ever touching the protein data: ADA's fine-grained ingest puts water,
// lipids and ions in separately loadable subsets; the selection language
// carves named groups out of the structure; the analysis toolkit computes
// RDFs and distributions from the subset frames alone.
//
// Run:  ./build/examples/membrane_analysis [output_dir]
#include <filesystem>
#include <iostream>

#include "ada/middleware.hpp"
#include "common/strings.hpp"
#include "common/units.hpp"
#include "formats/raw_traj.hpp"
#include "formats/xtc_file.hpp"
#include "vmd/analysis.hpp"
#include "vmd/select.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

using namespace ada;

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : "membrane_out";
  std::filesystem::create_directories(root);

  const auto system = workload::GpcrSystemBuilder(workload::GpcrSpec::tiny()).build();
  workload::TrajectoryGenerator dynamics(system, workload::DynamicsSpec{});
  formats::XtcWriter writer;
  for (int f = 0; f < 25; ++f) {
    ADA_CHECK(writer.add_frame(dynamics.current_step(), dynamics.current_time_ps(), system.box(),
                               dynamics.next_frame())
                  .is_ok());
  }

  // Fine-grained ingest: every chemical category its own tag.
  core::AdaConfig config;
  config.placement = core::PlacementPolicy::active_on_ssd(0, 1);
  core::Ada middleware(
      plfs::PlfsMount::open({{"ssd", root + "/ssd"}, {"hdd", root + "/hdd"}}).value(), config);
  const auto labels = core::categorize_fine_grained(system);
  ADA_CHECK(middleware.ingest_with_labels(labels, writer.bytes(), "membrane.xtc").is_ok());

  // Selection language carves analysis groups out of the structure.
  const auto phosphates = vmd::atom_select(system, "lipid and name P").value();
  const auto water_oxygens = vmd::atom_select(system, "water and name OW").value();
  const auto tail_ends = vmd::atom_select(system, "lipid and name C218 C318").value();
  std::cout << "selection groups: " << phosphates.count() << " lipid phosphates, "
            << water_oxygens.count() << " water oxygens, " << tail_ends.count()
            << " tail-end carbons\n";

  // Load only the subsets the analysis needs -- the protein never moves.
  auto fetch = [&](const core::Tag& tag) {
    const auto image = middleware.query("membrane.xtc", tag).value();
    return formats::RawTrajCatReader::open(image).value().read_all().value();
  };
  const auto lipid_frames = fetch("l");
  const auto water_frames = fetch("w");
  std::cout << "loaded tags 'l' and 'w' ("
            << format_bytes(static_cast<double>(middleware.subset_bytes("membrane.xtc", "l").value() +
                                                middleware.subset_bytes("membrane.xtc", "w").value()))
            << ") -- protein subset ("
            << format_bytes(
                   static_cast<double>(middleware.subset_bytes("membrane.xtc", "p").value()))
            << ") untouched\n";

  // Map the structure-level selections into subset-local coordinates.
  const auto& lipid_selection = labels.groups.at("l");
  const auto& water_selection = labels.groups.at("w");
  auto subset_local = [](const chem::Selection& group, const chem::Selection& subset) {
    // Indices of `group` within the packed ordering of `subset`.
    std::vector<std::uint32_t> local;
    std::uint32_t cursor = 0;
    for (const chem::Run& run : subset.runs()) {
      for (std::uint32_t i = run.begin; i < run.end; ++i, ++cursor) {
        if (group.contains(i)) local.push_back(cursor);
      }
    }
    return local;
  };
  const auto phosphate_local = subset_local(phosphates, lipid_selection);
  const auto ow_local = subset_local(water_oxygens, water_selection);

  auto gather = [](const formats::TrajFrame& frame, const std::vector<std::uint32_t>& ids) {
    std::vector<float> out;
    out.reserve(ids.size() * 3);
    for (const std::uint32_t i : ids) {
      out.push_back(frame.coords[3 * i]);
      out.push_back(frame.coords[3 * i + 1]);
      out.push_back(frame.coords[3 * i + 2]);
    }
    return out;
  };

  // Headgroup hydration: RDF between lipid phosphates and water oxygens,
  // averaged over frames.
  const std::array<float, 3> box = {system.box().x(), system.box().y(), system.box().z()};
  constexpr std::size_t kBins = 12;
  const double r_max = static_cast<double>(box[0]) / 2 * 0.9;
  std::vector<double> g_sum(kBins, 0.0);
  for (std::size_t f = 0; f < lipid_frames.size(); ++f) {
    const auto p_coords = gather(lipid_frames[f], phosphate_local);
    const auto w_coords = gather(water_frames[f], ow_local);
    const auto rdf = vmd::radial_distribution(p_coords, w_coords, box, r_max, kBins).value();
    for (std::size_t b = 0; b < kBins; ++b) g_sum[b] += rdf.g[b];
  }
  std::cout << "\nphosphate-water RDF, averaged over " << lipid_frames.size() << " frames:\n";
  for (std::size_t b = 0; b < kBins; ++b) {
    const double r = (static_cast<double>(b) + 0.5) * r_max / kBins;
    const double g = g_sum[b] / static_cast<double>(lipid_frames.size());
    std::cout << "  r=" << format_fixed(r, 2) << " nm  g(r)=" << format_fixed(g, 2) << "  "
              << std::string(static_cast<std::size_t>(std::min(60.0, g * 12)), '#') << "\n";
  }

  // Bilayer thickness proxy: mean |z - center| of the phosphates per leaflet.
  double upper = 0;
  double lower = 0;
  std::size_t nu = 0;
  std::size_t nl = 0;
  const float cz = system.box().z() / 2;
  const auto p0 = gather(lipid_frames.front(), phosphate_local);
  for (std::size_t i = 2; i < p0.size(); i += 3) {
    if (p0[i] > cz) {
      upper += static_cast<double>(p0[i]);
      ++nu;
    } else {
      lower += static_cast<double>(p0[i]);
      ++nl;
    }
  }
  if (nu > 0 && nl > 0) {
    std::cout << "\nbilayer P-P thickness: "
              << format_fixed(upper / static_cast<double>(nu) - lower / static_cast<double>(nl),
                              2)
              << " nm (" << nu << " upper / " << nl << " lower leaflet phosphates)\n";
  }
  std::cout << "\nall of the above ran without loading a single protein byte.\n";
  return 0;
}
