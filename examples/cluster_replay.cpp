// Cluster replay: animation playback under memory pressure, on the
// simulated nine-node cluster.
//
// Section 2.1 motivates ADA with the playback problem: on a cluster with
// limited compute-node memory, "replaying the frames back and forth" causes
// frequent frame swapping and a low hit rate -- a non-fluent animation.
// This example runs the cluster performance model for the initial load and
// the LRU replay model for the playback, comparing the traditional full
// trajectory against ADA's protein subset.
//
// Run:  ./build/examples/cluster_replay
#include <iostream>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/units.hpp"
#include "platform/pipeline.hpp"
#include "platform/platform.hpp"
#include "vmd/replay.hpp"

using namespace ada;

namespace {

void report(const char* title, const platform::ScenarioResult& load,
            const vmd::AnimationReplayer& replayer, double refetch_rate_bps) {
  const auto& stats = replayer.stats();
  const double stall_s = stats.refetch_bytes / refetch_rate_bps;
  std::cout << "\n" << title << "\n"
            << "  initial load: " << format_seconds(load.turnaround_s) << " (retrieval "
            << format_seconds(load.retrieval_s) << "), memory "
            << format_bytes(load.memory_peak_bytes) << "\n"
            << "  cache: " << replayer.cache_capacity_frames() << " frames resident\n"
            << "  replay: " << stats.accesses << " frame accesses, hit rate "
            << format_fixed(100.0 * stats.hit_rate(), 1) << "%, refetched "
            << format_bytes(stats.refetch_bytes) << " (" << format_seconds(stall_s)
            << " of playback stalls)\n";
}

}  // namespace

int main() {
  const auto cluster = platform::Platform::small_cluster();
  constexpr std::uint64_t kFrames = 6256;
  const auto sizes =
      platform::WorkloadSizes::from_profile(platform::FrameProfile::paper_gpcr(), kFrames);

  std::cout << "cluster replay study: " << kFrames << " frames, raw "
            << format_bytes(sizes.raw_bytes) << ", protein subset "
            << format_bytes(sizes.protein_bytes) << "\n"
            << "compute node DRAM: " << format_bytes(cluster.dram_bytes)
            << " -- but VMD's playback cache is capped at 2 GB (other users share the node)\n";

  const double cache_bytes = 2 * kGB;
  const double full_frame = sizes.raw_bytes / static_cast<double>(kFrames);
  const double protein_frame = sizes.protein_bytes / static_cast<double>(kFrames);
  // Misses refetch from the cluster file system at its streaming rate.
  const double hybrid_rate = 1.5e9;  // hybrid PVFS effective (HDD-bound)
  const double ssd_rate = 4e9;       // ADA subset from SSD PVFS (NIC-bound)

  // Traditional: full frames through D-PVFS.
  {
    const auto load = platform::run_scenario(cluster, platform::Scenario::kRawFs, sizes);
    vmd::AnimationReplayer replayer(static_cast<std::uint32_t>(kFrames), full_frame, cache_bytes);
    replayer.play_back_and_forth(3);
    Rng rng(11);
    replayer.play_random(2000, rng);
    report("traditional (D-PVFS, full frames):", load, replayer, hybrid_rate);
  }

  // ADA-assisted: protein frames only.
  {
    const auto load = platform::run_scenario(cluster, platform::Scenario::kAdaProtein, sizes);
    vmd::AnimationReplayer replayer(static_cast<std::uint32_t>(kFrames), protein_frame,
                                    cache_bytes);
    replayer.play_back_and_forth(3);
    Rng rng(11);
    replayer.play_random(2000, rng);
    report("ADA-assisted (D-ADA (protein)):", load, replayer, ssd_rate);
  }

  std::cout << "\nreading: ADA's smaller frames let ~2.4x more of the animation stay\n"
               "resident, so back-and-forth replay stops thrashing -- the fluent-playback\n"
               "effect behind the paper's Section 2.1 motivation.\n";
  return 0;
}
