// Custom schema tags: the paper's Section 6 future work, working.
//
// "we plan to develop a dynamic data categorizing and labeling interface
//  through which a user can describe the structure of his raw data in a
//  configuration file."
//
// A materials scientist (the paper's VASP/XCrySDen audience) wants finer
// control than protein/MISC: separate tags for the lipid membrane, the
// solvent shell, and the ions, with everything else defaulting to MISC.
// The schema below is plain text a user could ship next to their dataset;
// ADA ingests under it, and each tag becomes independently loadable.
//
// Run:  ./build/examples/custom_schema_tags [output_dir]
#include <filesystem>
#include <iostream>

#include "ada/middleware.hpp"
#include "ada/schema_config.hpp"
#include "common/strings.hpp"
#include "common/units.hpp"
#include "formats/pdb.hpp"
#include "formats/raw_traj.hpp"
#include "formats/xtc_file.hpp"
#include "workload/gpcr_builder.hpp"
#include "workload/trajectory_gen.hpp"

using namespace ada;

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : "schema_tags_out";
  std::filesystem::create_directories(root);

  // The user's categorization, as a config file.
  const std::string schema_text =
      "# my-study.ada-schema: what each tag means for this dataset\n"
      "tag prot     category protein\n"
      "tag membrane category lipid\n"
      "tag shell    category water\n"
      "tag ions     category ion\n"
      "default misc\n";
  const auto schema = core::CategorizerSchema::parse(schema_text).value();
  std::cout << "parsed schema with " << schema.rule_count() << " rules, default tag '"
            << schema.default_tag() << "'\n";

  // Build data and categorize under the schema.
  workload::GpcrSpec spec = workload::GpcrSpec::tiny();
  spec.ligand_atoms = 16;  // falls through every rule -> "misc"
  const auto system = workload::GpcrSystemBuilder(spec).build();
  const auto labels = schema.categorize(system);

  workload::TrajectoryGenerator dynamics(system, workload::DynamicsSpec{});
  formats::XtcWriter writer;
  for (int f = 0; f < 20; ++f) {
    ADA_CHECK(writer.add_frame(dynamics.current_step(), dynamics.current_time_ps(), system.box(),
                               dynamics.next_frame())
                  .is_ok());
  }

  // Route hot tags to the fast backend via a custom placement policy.
  core::AdaConfig config;
  config.placement.backend_of_tag = {{"prot", 0}, {"ions", 0}};
  config.placement.default_backend = 1;
  core::Ada middleware(
      plfs::PlfsMount::open({{"fast", root + "/mnt_fast"}, {"bulk", root + "/mnt_bulk"}}).value(),
      config);
  const auto report = middleware.ingest_with_labels(labels, writer.bytes(), "study.xtc").value();

  std::cout << "\ningested study.xtc with schema-driven tags:\n";
  for (const auto& [tag, bytes] : report.preprocess.subset_bytes) {
    std::cout << "  " << tag << ": " << report.preprocess.subset_atoms.at(tag) << " atoms, "
              << format_bytes(static_cast<double>(bytes)) << " -> backend '"
              << middleware.mount().backend(report.backend_of_tag.at(tag)).name << "'\n";
  }

  // Each tag loads independently -- e.g. just the ions for a conductivity
  // analysis, a few KB instead of the whole trajectory.
  const auto ions = middleware.query("study.xtc", "ions").value();
  const auto reader = formats::RawTrajReader::open(ions).value();
  std::cout << "\nloaded tag 'ions' alone: " << reader.frame_count() << " frames x "
            << reader.atom_count() << " atoms = "
            << format_bytes(static_cast<double>(ions.size())) << " (the full trajectory is "
            << format_bytes(static_cast<double>(
                   formats::raw_file_bytes(system.atom_count(), reader.frame_count())))
            << " raw)\n";

  // Average ion displacement across the trajectory, from subset data only.
  const auto first = reader.frame(0).value();
  const auto last = reader.frame(reader.frame_count() - 1).value();
  double displacement = 0;
  for (std::size_t i = 0; i < first.coords.size(); ++i) {
    const double d = static_cast<double>(last.coords[i]) - static_cast<double>(first.coords[i]);
    displacement += d * d;
  }
  displacement = std::sqrt(displacement / (static_cast<double>(first.coords.size()) / 3.0));
  std::cout << "ion RMS displacement over the trajectory: " << format_fixed(displacement, 3)
            << " nm -- computed without touching protein, lipid or water data.\n";
  return 0;
}
